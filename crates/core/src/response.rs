//! Best responses: exact (incremental branch-and-bound) and greedy single
//! moves.
//!
//! Computing an exact best response is NP-hard in every variant of the
//! game (Corollary 1, Theorems 13 and 16), so the exact solver here is an
//! exponential branch-and-bound over candidate edge subsets, effective for
//! the instance sizes of the experiments (n ≲ 20) and for the structured
//! reduction gadgets where the pruning bound collapses the search space.
//!
//! # The incremental engine
//!
//! The historical implementation ([`exact_best_response_reference`]) priced
//! every *leaf* of the include/exclude tree with a from-scratch Dijkstra.
//! The current engine ([`exact_best_response`]) instead maintains the
//! agent's distance vector *incrementally* along the DFS: including
//! candidate edge `(u, v)` can only decrease distances, so the include
//! branch relaxes outward from `v` through an
//! [`DynamicSssp`] undo log and restores
//! the exact previous vector on backtrack. Consequences:
//!
//! * **every partial set is fully priced for free** — the live vector *is*
//!   the distance cost of the chosen set, so each subset is evaluated at
//!   the moment its last edge is included (`O(n)` sum, zero Dijkstras at
//!   leaves) and the incumbent tightens at internal nodes instead of only
//!   at depth `n−1`;
//! * the DFS allocates nothing per node (the undo log, heap, and chosen
//!   stack are reused; only incumbent improvements clone a strategy).
//!
//! # Why the partial-network bound is admissible
//!
//! A branch at depth `idx` has committed `chosen ⊆ {candidates[..idx]}`
//! and may still add edges only towards `R = candidates[idx..]`. Every
//! shortest path from `u` in any completion either
//!
//! 1. uses no still-addable edge — all new edges are incident to `u`, a
//!    path visits `u` once, so the whole path lies in `base ∪ chosen` and
//!    its length is ≥ the live incremental distance `D[x]`, or
//! 2. starts with a new edge `(u, v)`, `v ∈ R` — the remainder avoids `u`,
//!    hence uses no new edge, so the path length is
//!    ≥ `w(u,v) + d_{B*}(v, x)`, where `B* = base ∪ {(u,c) : c candidate}`
//!    is the *optimistic network* (a supergraph of every reachable
//!    network, so its distances lower-bound all of them).
//!
//! Therefore `Σ_x min(D[x], min_{v∈R}(w(u,v) + d_{B*}(v, x)))` is an
//! admissible distance lower bound — strictly stronger than the host
//! closure bound the reference engine uses (`B*` is a subgraph of the
//! host, so `d_H ≤ d_{B*}`, and the live `D` tightens it further as the
//! DFS descends). The inner `min_{v∈R}` depends only on `idx` (remaining
//! candidates form a suffix), so it is precomputed once per search as a
//! suffix-min table (`via`), making the bound `O(n)` per node.
//!
//! Costs are **bit-identical** to the reference engine on any instance
//! whose distinct candidate subsets are not tied within
//! [`EPS`](gncg_graph::EPS): the incremental vector equals a from-scratch
//! Dijkstra's exactly (both take exact minima over the same sets of path
//! prefix sums — see `gncg_graph::csr`), and both sum it in index order.
//! On adversarial sub-`EPS` near-ties the engines may legitimately settle
//! on either member of the tie (they visit subsets in different orders
//! and both accept/prune with `EPS` tolerance), so reported costs can
//! differ by up to `EPS` — the paper's constructions and the random
//! metrics of the equivalence suites clear the tolerance by orders of
//! magnitude, which is what licenses the exact `assert_eq!` there.

use std::collections::BTreeSet;

use gncg_graph::{
    strictly_less, AdjacencyList, Csr, DijkstraScratch, DynamicSssp, MaskedEdges, NodeId,
};

use crate::cost::{
    agent_cost_in, base_graph_from, base_graph_without, candidate_cost, CostBreakdown,
};
use crate::{Game, Move, Profile};

/// Result of a best-response computation.
#[derive(Clone, Debug)]
pub struct BestResponse {
    /// The optimal strategy found.
    pub strategy: BTreeSet<NodeId>,
    /// Its cost for the agent.
    pub cost: f64,
    /// The agent's current cost before deviating.
    pub current_cost: f64,
    /// Number of candidate subsets fully evaluated (diagnostic).
    pub evaluated: usize,
}

impl BestResponse {
    /// Whether the best response strictly improves on the current strategy.
    pub fn improves(&self) -> bool {
        strictly_less(self.cost, self.current_cost)
    }
}

/// Per-activation owned search state: a CSR snapshot of the base graph
/// plus the candidate/bound tables. The DFS itself runs on the borrowed
/// [`BrSearchView`], which a persistent [`BrBoundCache`] can also
/// assemble from its delta-maintained resident tables.
struct BrSearch<'g> {
    game: &'g Game,
    agent: NodeId,
    n: usize,
    /// CSR snapshot of the base graph (network minus the agent's
    /// sole-owned edges); all incremental relaxation runs on it.
    csr: Csr,
    /// Candidates sorted by increasing host weight from the agent.
    candidates: Vec<NodeId>,
    /// `w(agent, candidates[i])`, parallel to `candidates`.
    cand_w: Vec<f64>,
    /// Distances from the agent in the bare base graph.
    d0: Vec<f64>,
    /// Suffix-min table of the optimistic bound:
    /// `via[idx·n + x] = min_{i ≥ idx} (cand_w[i] + d_{B*}(candidates[i], x))`,
    /// with row `len` all-∞ (no candidates left).
    via: Vec<f64>,
    /// The host's weight class, installed as the bucket-queue hint on
    /// every SSSP engine this search spawns ([`Game::weight_class`]).
    weight_class: Option<(f64, f64)>,
}

/// Borrowed read-only state shared by every branch of one best-response
/// search — the immutable half of the engine, split out so the fresh
/// per-activation path ([`BrSearch`]) and the persistent cached path
/// ([`BrBoundCache`]) drive the *same* DFS over the same invariants.
#[derive(Clone, Copy)]
struct BrSearchView<'g> {
    game: &'g Game,
    agent: NodeId,
    n: usize,
    csr: &'g Csr,
    candidates: &'g [NodeId],
    cand_w: &'g [f64],
    via: &'g [f64],
}

/// Mutable per-branch state (per worker in the parallel search).
#[derive(Debug)]
struct BrWorker {
    inc: DynamicSssp,
    chosen: Vec<NodeId>,
    /// Membership bitmap of `chosen` (indexed by node id): evaluation sums
    /// edge weights in ascending id order, matching the `BTreeSet`
    /// iteration order of [`candidate_cost`] bit for bit.
    in_set: Vec<bool>,
    best_cost: f64,
    best_set: BTreeSet<NodeId>,
    evaluated: usize,
}

impl BrWorker {
    fn new() -> Self {
        BrWorker {
            inc: DynamicSssp::new(),
            chosen: Vec::new(),
            in_set: Vec::new(),
            best_cost: f64::INFINITY,
            best_set: BTreeSet::new(),
            evaluated: 0,
        }
    }

    /// Re-arms the worker for one search: live vector seeded from `d0`,
    /// incumbent seeded from the agent's current strategy and cost.
    fn reset(
        &mut self,
        agent: NodeId,
        n: usize,
        d0: &[f64],
        weight_class: Option<(f64, f64)>,
        current: f64,
        current_set: &BTreeSet<NodeId>,
    ) {
        self.chosen.clear();
        self.in_set.clear();
        self.in_set.resize(n, false);
        self.best_cost = current;
        self.best_set.clear();
        self.best_set.extend(current_set.iter().copied());
        self.evaluated = 0;
        self.inc.set_weight_class(weight_class);
        self.inc.reset_from(agent, d0);
    }

    fn fresh(search: &BrSearch<'_>, current: f64, current_set: &BTreeSet<NodeId>) -> Self {
        let mut worker = BrWorker::new();
        worker.reset(
            search.agent,
            search.n,
            &search.d0,
            search.weight_class,
            current,
            current_set,
        );
        worker
    }

    fn take_result(&mut self, current: f64) -> BestResponse {
        BestResponse {
            strategy: std::mem::take(&mut self.best_set),
            cost: self.best_cost,
            current_cost: current,
            evaluated: self.evaluated,
        }
    }
}

impl<'g> BrSearch<'g> {
    /// The borrowed view the DFS runs on.
    fn view(&self) -> BrSearchView<'_> {
        BrSearchView {
            game: self.game,
            agent: self.agent,
            n: self.n,
            csr: &self.csr,
            candidates: &self.candidates,
            cand_w: &self.cand_w,
            via: &self.via,
        }
    }

    /// Builds the shared search state from a prebuilt base graph.
    fn new(game: &'g Game, agent: NodeId, base: &AdjacencyList) -> Self {
        let n = game.n();
        let mut candidates: Vec<NodeId> = (0..n as NodeId).filter(|&v| v != agent).collect();
        candidates.sort_by(|&a, &b| game.w(agent, a).total_cmp(&game.w(agent, b)));
        let cand_w: Vec<f64> = candidates.iter().map(|&v| game.w(agent, v)).collect();

        let weight_class = game.weight_class();
        let csr = Csr::from_adjacency(base);
        let mut scratch = DijkstraScratch::new();
        scratch.set_weight_class(weight_class);
        scratch.run(&csr, agent, &[]);
        let d0 = scratch.to_vec(n);

        // The optimistic network B*: base plus every candidate edge.
        let mut bstar = base.clone();
        for &v in &candidates {
            if !bstar.has_edge(agent, v) {
                bstar.add_edge(agent, v, game.w(agent, v));
            }
        }
        let bstar_csr = Csr::from_adjacency(&bstar);

        // Suffix-min bound table, built back to front.
        let len = candidates.len();
        let mut via = vec![f64::INFINITY; (len + 1) * n];
        for i in (0..len).rev() {
            scratch.run(&bstar_csr, candidates[i], &[]);
            let (lo, hi) = (i * n, (i + 1) * n);
            for x in 0..n {
                let through = cand_w[i] + scratch.dist(x as NodeId);
                via[lo + x] = through.min(via[hi + x]);
            }
        }

        BrSearch {
            game,
            agent,
            n,
            csr,
            candidates,
            cand_w,
            d0,
            via,
            weight_class,
        }
    }
}

impl BrSearchView<'_> {
    /// The admissible lower bound at a node: committed edge cost plus
    /// `Σ_x min(live dist, optimistic completion dist)`.
    #[inline]
    fn lower_bound(&self, worker: &BrWorker, idx: usize, edge_w_sum: f64) -> f64 {
        let via_row = &self.via[idx * self.n..(idx + 1) * self.n];
        let dist = worker.inc.dist();
        let mut lb = 0.0;
        for x in 0..self.n {
            lb += dist[x].min(via_row[x]);
        }
        self.game.alpha() * edge_w_sum + lb
    }

    /// Prices the worker's current chosen set off the live vector and
    /// tightens the incumbent. The edge sum is re-accumulated in ascending
    /// node-id order (not DFS order) so totals match [`candidate_cost`]
    /// exactly — f64 addition is order-sensitive.
    #[inline]
    fn evaluate_current(&self, worker: &mut BrWorker) {
        let mut edge_sum = 0.0;
        for v in 0..self.n {
            if worker.in_set[v] {
                edge_sum += self.game.w(self.agent, v as NodeId);
            }
        }
        let cost = self.game.alpha() * edge_sum + worker.inc.sum();
        worker.evaluated += 1;
        if strictly_less(cost, worker.best_cost) {
            worker.best_cost = cost;
            worker.best_set = worker.chosen.iter().copied().collect();
        }
    }

    /// DFS over include/exclude decisions from `idx` onward. The chosen
    /// set at entry has already been evaluated; `worker.inc` holds its
    /// exact distance vector.
    fn dfs(&self, worker: &mut BrWorker, idx: usize, edge_w_sum: f64) {
        if self.lower_bound(worker, idx, edge_w_sum) >= worker.best_cost - gncg_graph::EPS {
            // No completion below this node can strictly beat the
            // incumbent; every subset under it is dominated.
            return;
        }
        if idx == self.candidates.len() {
            return;
        }
        let v = self.candidates[idx];
        let w = self.cand_w[idx];
        // Branch 1: include v — relax incrementally, price the new set.
        worker.inc.add_edge(self.csr, self.agent, v, w);
        worker.chosen.push(v);
        worker.in_set[v as usize] = true;
        self.evaluate_current(worker);
        self.dfs(worker, idx + 1, edge_w_sum + w);
        worker.in_set[v as usize] = false;
        worker.chosen.pop();
        worker.inc.undo();
        // Branch 2: exclude v.
        self.dfs(worker, idx + 1, edge_w_sum);
    }
}

/// Exact best response of `agent` via incremental depth-first
/// branch-and-bound over subsets of `V \ {agent}` (see the module docs for
/// the engine's invariants). The agent's *current* strategy seeds the
/// incumbent, so the search also certifies equilibria quickly.
pub fn exact_best_response(game: &Game, profile: &Profile, agent: NodeId) -> BestResponse {
    let network = profile.build_network(game);
    exact_best_response_in(game, profile, &network, agent)
}

/// [`exact_best_response`] reusing an already-built network `G(s)` — the
/// entry point for the dynamics engine's cached-network evaluation.
pub fn exact_best_response_in(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    agent: NodeId,
) -> BestResponse {
    let current = agent_cost_in(game, profile, network, agent).total();
    exact_best_response_given_current(game, profile, network, agent, current)
}

/// [`exact_best_response_in`] with the agent's current cost supplied by
/// the caller — the entry point for the dynamics engine's warm per-agent
/// distance vectors, which price the current strategy without the
/// per-activation Dijkstra `agent_cost_in` would run.
///
/// `current` must equal `agent_cost_in(game, profile, network, agent)
/// .total()` exactly (it seeds the incumbent, so a too-low value could
/// prune the true optimum).
pub fn exact_best_response_given_current(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    agent: NodeId,
    current: f64,
) -> BestResponse {
    let base = base_graph_from(network, profile, agent);
    let search = BrSearch::new(game, agent, &base);
    let view = search.view();

    let mut worker = BrWorker::fresh(&search, current, profile.strategy(agent));
    // The empty set is the one subset with no include step: price it here.
    view.evaluate_current(&mut worker);
    view.dfs(&mut worker, 0, 0.0);

    worker.take_result(current)
}

/// Fewest candidates (`n − 1`) for which [`exact_best_response_parallel`]
/// actually splits. Below this the whole pruned DFS is tens of
/// microseconds, so per-subtree incumbent re-seeding plus spawn overhead
/// outweigh any core the split could recruit (`BENCH_hotpath.json`
/// measured the split 15–30% *slower* at n = 12–16).
pub const MIN_PARALLEL_CANDIDATES: usize = 18;

/// Rayon-parallel exact best response: the include/exclude tree is split
/// at the first `SPLIT_DEPTH` candidate decisions into `2^SPLIT_DEPTH`
/// independent subtree searches that run on the rayon pool, each with its
/// own incumbent seeded by the agent's current cost; results reduce to the
/// global optimum. Produces exactly the same *cost* as
/// [`exact_best_response`] (the strategy may differ among ties).
///
/// Splitting has a real cost even on a real pool: each subtree re-seeds
/// its incumbent from the agent's current cost instead of sharing the
/// global one, so the split prices leaves the shared-incumbent DFS would
/// have pruned. Below [`MIN_PARALLEL_CANDIDATES`] candidates — or when
/// the pool has a single thread — that overhead cannot be bought back,
/// and this function runs the plain [`exact_best_response`] search
/// inline, making it never slower than the sequential solver
/// (`bench_snapshot.sh` asserts the relation at every measured `n`).
pub fn exact_best_response_parallel(game: &Game, profile: &Profile, agent: NodeId) -> BestResponse {
    use rayon::prelude::*;
    const SPLIT_DEPTH: usize = 4;

    let network = profile.build_network(game);
    // The candidate count is n − 1; check it before paying for the search
    // state (the via table costs n Dijkstras) the sequential path would
    // rebuild anyway.
    if game.n().saturating_sub(1) < MIN_PARALLEL_CANDIDATES || rayon::current_num_threads() == 1 {
        return exact_best_response_in(game, profile, &network, agent);
    }
    let current = agent_cost_in(game, profile, &network, agent).total();
    let base = base_graph_from(&network, profile, agent);
    let search = BrSearch::new(game, agent, &base);
    let view = search.view();

    let split = SPLIT_DEPTH;
    let results: Vec<(f64, BTreeSet<NodeId>, usize)> = (0u32..(1 << split))
        .into_par_iter()
        .map(|prefix_mask| {
            let mut worker = BrWorker::fresh(&search, current, profile.strategy(agent));
            let mut edge_w_sum = 0.0;
            for i in 0..split {
                if prefix_mask & (1 << i) != 0 {
                    let v = search.candidates[i];
                    let w = search.cand_w[i];
                    worker.inc.add_edge(&search.csr, agent, v, w);
                    worker.chosen.push(v);
                    worker.in_set[v as usize] = true;
                    edge_w_sum += w;
                }
            }
            // Each prefix set is a complete subset in exactly this task:
            // price it before descending (subsets with includes past the
            // split are priced at their last include inside the DFS).
            view.evaluate_current(&mut worker);
            view.dfs(&mut worker, split, edge_w_sum);
            (worker.best_cost, worker.best_set, worker.evaluated)
        })
        .collect();

    let mut best_cost = current;
    let mut best_set: BTreeSet<NodeId> = profile.strategy(agent).clone();
    let mut evaluated = 0usize;
    for (c, s, e) in results {
        evaluated += e;
        if strictly_less(c, best_cost) {
            best_cost = c;
            best_set = s;
        }
    }
    BestResponse {
        strategy: best_set,
        cost: best_cost,
        current_cost: current,
        evaluated,
    }
}

/// Committed removals a [`BrBoundCache`] absorbs as bound staleness
/// before its next activation triggers a full bound-table rebuild.
///
/// Each removal the cache leaves unrepaired keeps one *phantom* edge in
/// the envelope graph its B\* vectors are exact for, which can only make
/// the pruning bound *lower* — weaker pruning, never a wrong answer — so
/// the budget trades rebuild Dijkstras against DFS nodes. The value is a
/// plain constant, not a tuning surface: results are bitwise identical at
/// any budget (see `tests/br_cache.rs`).
pub const BR_STALENESS_BUDGET: usize = 16;

/// Persistent per-agent branch-and-bound state for
/// [`exact_best_response`]: the sorted candidate list, the exact base
/// distances `d0`, and the per-candidate B\* distance vectors backing the
/// suffix-min `via` bound table survive from activation to activation and
/// are delta-maintained through the same committed `NetworkDelta` staging
/// that keeps the dynamics engine's warm vectors alive — replacing the
/// `n` full Dijkstras + CSR snapshots `BrSearch` pays per activation.
///
/// # What is exact and what is merely admissible
///
/// * **`base`/`d0` are exact.** `d0` seeds the DFS's live vector, whose
///   sum *is* the reported cost of every evaluated subset, so it gets the
///   warm-vector treatment: committed insertions replay lazily in one
///   batched [`DynamicSssp::relax_inserts`] pass behind a cursor into the
///   engine's insert log ([`BrBoundCache::flush_d0`], forced eagerly
///   ahead of any removal), removals repair in place via
///   [`DynamicSssp::remove_edges`], and ownership flips (an edge crossing
///   the sole-owned boundary without any network change) are patched
///   eagerly by the [`BrBoundCache::gain_co_owned`] /
///   [`BrBoundCache::lose_co_owned`] hooks.
///
/// * **The B\* vectors only feed the pruning bound**, so they never need
///   to track the true optimistic network exactly — but "stale yet
///   admissible" is subtler than leaving removal repairs undone. A
///   decrease-only insert replay into a vector that is merely *below*
///   the truth can stop propagating at a stale-low node and leave some
///   *other* node **above** the truth — an inadmissible bound. The cache
///   therefore keeps every B\* vector **exact for the envelope graph**
///   `Ĝ = B*(at last rebuild) ∪ {inserts since}`: insert replays stay on
///   [`DynamicSssp::relax_inserts`]'s exactness contract, and removals
///   simply *keep* the removed edge in `Ĝ` (a *phantom* edge). Since the
///   true optimistic network `B* = network ∪ star(agent)` is always a
///   subgraph of `Ĝ`, `d_Ĝ ≤ d_B*` pointwise and the bound stays
///   admissible — each phantom edge just makes it lower, hence weaker.
///   Past [`BR_STALENESS_BUDGET`] phantoms the next activation rebuilds
///   the tables from scratch.
///
/// * **`B*` does not depend on the agent's own strategy** (`network ∪
///   star(agent)` is invariant under the agent's own moves, and the
///   agent's sole-owned edges are star edges already in `Ĝ`), so the
///   agent's own purchases and drops touch neither `base` nor `Ĝ`.
///
/// Because weaker pruning evaluates a *superset* of the subsets the
/// fresh search evaluates — all of them dominated within the search's
/// `EPS` acceptance — the chosen strategy and its cost are **bitwise
/// identical** to a fresh `BrSearch`, which stays resident as the
/// debug oracle: every cached search re-derives the fresh tables under
/// `debug_assertions`, asserts `d0` bitwise-equal, asserts the cached
/// `via` bound admissible (≤ fresh) per node, and compares the chosen
/// best response and cost bit for bit.
#[derive(Debug)]
pub struct BrBoundCache {
    agent: NodeId,
    built: bool,
    n: usize,
    /// Candidates sorted by increasing host weight from the agent
    /// (game-fixed; recomputed only on rebuild).
    candidates: Vec<NodeId>,
    cand_w: Vec<f64>,
    /// The agent's base graph (network minus its sole-owned edges),
    /// maintained in lock-step with every committed delta.
    base: AdjacencyList,
    /// CSR snapshot of `base` for the DFS hot loop; rebuilt lazily when
    /// `base` changed since the last search.
    csr: Csr,
    csr_dirty: bool,
    /// Exact distances from the agent in `base`.
    d0: DynamicSssp,
    /// How many engine insert-log entries `d0` already reflects.
    d0_synced: usize,
    /// The envelope graph `Ĝ` the B\* vectors are exact for (see the
    /// type docs): monotonically grown by insert replays, never shrunk.
    ghat: AdjacencyList,
    /// Edges of `Ĝ` no longer in the live network (normalized pairs) —
    /// the staleness the budget counts.
    phantom: Vec<(NodeId, NodeId)>,
    /// Per-candidate B\* distance vectors (`bstar[i]` from source
    /// `candidates[i]`), exact for `Ĝ`.
    bstar: Vec<DynamicSssp>,
    /// How many engine insert-log entries the B\* vectors reflect.
    bstar_synced: usize,
    /// Suffix-min bound table derived from `bstar` (same layout as
    /// [`BrSearch::via`]); refreshed in one `O(n²)` pass when dirty.
    via: Vec<f64>,
    via_dirty: bool,
    /// Reusable DFS worker (live vector, chosen stack, incumbent).
    worker: BrWorker,
    scratch: DijkstraScratch,
    dist_buf: Vec<f64>,
    batch: Vec<(NodeId, NodeId, f64)>,
    weight_class: Option<(f64, f64)>,
    /// The last search's `(current strategy, result)`, returned verbatim
    /// when the agent is re-probed with **zero** intervening deltas — the
    /// cache tracks every committed change exactly, so "no change since
    /// the memo" means the query inputs are literally identical and the
    /// previous answer is bitwise the fresh answer by definition. Killed
    /// by every maintenance entry point; a hit additionally requires the
    /// caller's `current` cost and strategy to match bit for bit.
    memo: Option<(BTreeSet<NodeId>, BestResponse)>,
}

impl BrBoundCache {
    /// An empty, unbuilt cache for `agent`; tables fill on first
    /// [`BrBoundCache::ensure`].
    pub fn new(agent: NodeId) -> Self {
        BrBoundCache {
            agent,
            built: false,
            n: 0,
            candidates: Vec::new(),
            cand_w: Vec::new(),
            base: AdjacencyList::default(),
            csr: Csr::from_adjacency(&AdjacencyList::default()),
            csr_dirty: false,
            d0: DynamicSssp::new(),
            d0_synced: 0,
            ghat: AdjacencyList::default(),
            phantom: Vec::new(),
            bstar: Vec::new(),
            bstar_synced: 0,
            via: Vec::new(),
            via_dirty: false,
            worker: BrWorker::new(),
            scratch: DijkstraScratch::new(),
            dist_buf: Vec::new(),
            batch: Vec::new(),
            weight_class: None,
            memo: None,
        }
    }

    /// The agent this cache prices best responses for.
    pub fn agent(&self) -> NodeId {
        self.agent
    }

    /// Whether the tables are resident (a fresh or invalidated cache
    /// rebuilds on its next [`BrBoundCache::ensure`]).
    pub fn is_built(&self) -> bool {
        self.built
    }

    /// Phantom edges currently absorbed as staleness — `0` right after a
    /// rebuild, strictly `≤ BR_STALENESS_BUDGET` whenever a search runs.
    pub fn stale_removals(&self) -> usize {
        self.phantom.len()
    }

    /// Drops the tables (allocations survive for the next rebuild).
    /// Called whenever the owning context can no longer describe the
    /// committed delta stream precisely (context reset, raw deltas).
    pub fn invalidate(&mut self) {
        self.built = false;
        self.memo = None;
    }

    /// Whether the last result is memoized and no delta has touched the
    /// cache since — the next probe with an unchanged strategy and
    /// current cost returns it without a search (test observability).
    pub fn memo_is_warm(&self) -> bool {
        self.memo.is_some()
    }

    /// Bytes resident in the cache's tables — the B\* vectors dominate
    /// (`n − 1` SSSP engines of `Θ(n)` floats each).
    pub fn resident_bytes(&self) -> usize {
        self.d0.resident_bytes()
            + self
                .bstar
                .iter()
                .map(DynamicSssp::resident_bytes)
                .sum::<usize>()
            + self.via.capacity() * std::mem::size_of::<f64>()
            + self.phantom.capacity() * std::mem::size_of::<(NodeId, NodeId)>()
    }

    /// Makes the tables current for the live `network`: a full rebuild
    /// when unbuilt or past the staleness budget, otherwise one lazy
    /// replay of the pending committed-insert suffix into `d0` and the
    /// B\* vectors.
    pub fn ensure(
        &mut self,
        game: &Game,
        profile: &Profile,
        network: &AdjacencyList,
        insert_log: &[(NodeId, NodeId, f64)],
    ) {
        if !self.built || self.phantom.len() > BR_STALENESS_BUDGET {
            self.rebuild(game, profile, network, insert_log.len());
            return;
        }
        self.flush_d0(insert_log);
        self.sync_bstar(network, insert_log);
    }

    /// Rebuilds every table from the live network — the same
    /// construction as [`BrSearch::new`], kept as the oracle path.
    fn rebuild(&mut self, game: &Game, profile: &Profile, network: &AdjacencyList, log_len: usize) {
        let n = game.n();
        let agent = self.agent;
        self.n = n;
        self.weight_class = game.weight_class();
        self.scratch.set_weight_class(self.weight_class);

        self.candidates.clear();
        self.candidates
            .extend((0..n as NodeId).filter(|&v| v != agent));
        self.candidates
            .sort_by(|&a, &b| game.w(agent, a).total_cmp(&game.w(agent, b)));
        self.cand_w.clear();
        self.cand_w
            .extend(self.candidates.iter().map(|&v| game.w(agent, v)));

        self.base = base_graph_from(network, profile, agent);
        self.csr = Csr::from_adjacency(&self.base);
        self.csr_dirty = false;
        self.scratch.run(&self.base, agent, &[]);
        self.dist_buf.clear();
        self.dist_buf.resize(n, f64::INFINITY);
        self.scratch.write_distances(&mut self.dist_buf);
        self.d0.set_weight_class(self.weight_class);
        self.d0.reset_from(agent, &self.dist_buf);

        // A fresh envelope graph is exactly the optimistic network:
        // Ĝ = network ∪ star(agent) = base ∪ {(agent, c) ∀ candidates}.
        self.ghat = network.clone();
        for (i, &v) in self.candidates.iter().enumerate() {
            if !self.ghat.has_edge(agent, v) {
                self.ghat.add_edge(agent, v, self.cand_w[i]);
            }
        }
        self.phantom.clear();

        let len = self.candidates.len();
        if self.bstar.len() < len {
            self.bstar.resize_with(len, DynamicSssp::new);
        }
        for (i, &c) in self.candidates.iter().enumerate() {
            self.scratch.run(&self.ghat, c, &[]);
            self.dist_buf.clear();
            self.dist_buf.resize(n, f64::INFINITY);
            self.scratch.write_distances(&mut self.dist_buf);
            self.bstar[i].set_weight_class(self.weight_class);
            self.bstar[i].reset_from(c, &self.dist_buf);
        }
        self.rebuild_via();

        self.d0_synced = log_len;
        self.bstar_synced = log_len;
        self.built = true;
        self.memo = None;
    }

    /// Refreshes the suffix-min `via` table from the resident B\*
    /// vectors — the same back-to-front fold as [`BrSearch::new`], so a
    /// phantom-free cache reproduces the fresh table bit for bit.
    fn rebuild_via(&mut self) {
        let n = self.n;
        let len = self.candidates.len();
        self.via.clear();
        self.via.resize((len + 1) * n, f64::INFINITY);
        for i in (0..len).rev() {
            let dist = self.bstar[i].dist();
            let w = self.cand_w[i];
            let lo = i * n;
            // Row `i` folds over row `i + 1`, laid out right behind it.
            let (row, next) = self.via[lo..lo + 2 * n].split_at_mut(n);
            for ((slot, &d), &suffix) in row.iter_mut().zip(dist).zip(next.iter()) {
                *slot = (w + d).min(suffix);
            }
        }
        self.via_dirty = false;
    }

    /// Replays the pending committed-insert suffix into `d0`. Every
    /// pending entry present in `base` replays (entries absent from
    /// `base` are the agent's own sole-owned purchases, which the base
    /// graph excludes by definition — their log entries are skipped
    /// forever). The owning context must call this **before** a removal
    /// mutates the network: pending inserts replay against a base graph
    /// that still holds every edge about to go, the exactness contract
    /// of [`DynamicSssp::relax_inserts`].
    pub fn flush_d0(&mut self, insert_log: &[(NodeId, NodeId, f64)]) {
        if !self.built || self.d0_synced >= insert_log.len() {
            return;
        }
        self.memo = None;
        self.batch.clear();
        for &(a, b, w) in &insert_log[self.d0_synced..] {
            if self.base.has_edge(a, b) {
                self.batch.push((a, b, w));
            }
        }
        if !self.batch.is_empty() {
            self.d0.relax_inserts(&self.base, &self.batch);
        }
        self.d0_synced = insert_log.len();
    }

    /// Lazily replays pending committed inserts into the B\* vectors:
    /// each genuinely new edge enters the envelope graph `Ĝ` and is
    /// relaxed — exactly — into every resident vector in one batch; an
    /// edge `Ĝ` kept through an interim removal merely stops being
    /// phantom (the vectors are already exact for it).
    fn sync_bstar(&mut self, network: &AdjacencyList, insert_log: &[(NodeId, NodeId, f64)]) {
        if self.bstar_synced >= insert_log.len() {
            return;
        }
        self.memo = None;
        self.batch.clear();
        for &(a, b, w) in &insert_log[self.bstar_synced..] {
            if a == self.agent || b == self.agent {
                // Star edges are permanently in Ĝ at the same host
                // weight; the replay would be a no-op.
                continue;
            }
            if !network.has_edge(a, b) {
                // Inserted and removed again between syncs: the edge
                // never entered Ĝ (its removal pushed no phantom).
                continue;
            }
            let key = (a.min(b), a.max(b));
            if self.ghat.has_edge(a, b) {
                self.phantom.retain(|&p| p != key);
                continue;
            }
            self.ghat.add_edge(a, b, w);
            self.batch.push((a, b, w));
        }
        if !self.batch.is_empty() {
            let len = self.candidates.len();
            for inc in &mut self.bstar[..len] {
                inc.relax_inserts(&self.ghat, &self.batch);
            }
            self.via_dirty = true;
        }
        self.bstar_synced = insert_log.len();
    }

    /// Notes a committed edge-insertion batch by `mover` (the edges are
    /// live in the network). Base bookkeeping is eager and `O(1)` per
    /// edge; the SSSP repairs stay lazy behind the cursors. A batch by
    /// the cache's own agent is sole-owned by construction — outside the
    /// base graph, already in `Ĝ` as star edges — and is a no-op.
    pub fn on_inserts(&mut self, inserts: &[(NodeId, NodeId, f64)], mover: NodeId) {
        if !self.built || mover == self.agent {
            return;
        }
        self.memo = None;
        for &(a, b, w) in inserts {
            if !self.base.has_edge(a, b) {
                self.base.add_edge(a, b, w);
                self.csr_dirty = true;
            }
        }
    }

    /// Notes committed removals by `mover`, already applied to the
    /// network; [`BrBoundCache::flush_d0`] must have run first. `d0` is
    /// repaired exactly in one batched affected-region pass; the B\*
    /// vectors instead keep each removed edge in `Ĝ` as a phantom
    /// (admissible staleness — see the type docs). A batch by the
    /// cache's own agent is a no-op (sole-owned drops were never in the
    /// base graph, and their star edges legitimately stay in `Ĝ`).
    pub fn on_removals(&mut self, removed: &[(NodeId, NodeId, f64)], mover: NodeId) {
        if !self.built || mover == self.agent {
            return;
        }
        self.memo = None;
        self.batch.clear();
        for &(a, b, w) in removed {
            if self.base.remove_edge(a, b) {
                self.batch.push((a, b, w));
                self.csr_dirty = true;
            }
            if a != self.agent && b != self.agent && self.ghat.has_edge(a, b) {
                let key = (a.min(b), a.max(b));
                if !self.phantom.contains(&key) {
                    self.phantom.push(key);
                }
            }
        }
        if !self.batch.is_empty() {
            self.d0.remove_edges(&self.base, &self.batch);
        }
    }

    /// The mover just bought an edge the cache's agent already owned:
    /// `(agent, other)` was sole-owned (outside the base graph) and is
    /// now co-owned (inside it). No network edge moved, so only this
    /// cache's base/`d0` change; `Ĝ` holds the star edge either way.
    pub fn gain_co_owned(&mut self, other: NodeId, w: f64, insert_log: &[(NodeId, NodeId, f64)]) {
        if !self.built {
            return;
        }
        self.memo = None;
        // Pending inserts replay first, against the base graph *without*
        // the flip edge (the graph d0 is exact for, minus the pending
        // batch); only then does the flip edge enter and relax.
        self.flush_d0(insert_log);
        if !self.base.has_edge(self.agent, other) {
            self.base.add_edge(self.agent, other, w);
            self.csr_dirty = true;
            self.d0.relax_inserts(&self.base, &[(self.agent, other, w)]);
        }
    }

    /// The mover just dropped its copy of an edge the cache's agent
    /// still owns: `(agent, other)` was co-owned (inside the base graph)
    /// and is now sole-owned (outside it). The mirror image of
    /// [`BrBoundCache::gain_co_owned`].
    pub fn lose_co_owned(&mut self, other: NodeId, w: f64, insert_log: &[(NodeId, NodeId, f64)]) {
        if !self.built {
            return;
        }
        self.memo = None;
        // Pending inserts replay while the base graph still holds the
        // flip edge; the exact removal repair follows.
        self.flush_d0(insert_log);
        if self.base.remove_edge(self.agent, other) {
            self.csr_dirty = true;
            self.d0.remove_edges(&self.base, &[(self.agent, other, w)]);
        }
    }

    /// The exact best response off the resident tables — the same DFS as
    /// [`exact_best_response_given_current`], minus its per-activation
    /// CSR snapshots and `n + 1` Dijkstras; a re-probe with zero
    /// intervening deltas skips the DFS too and returns the memoized
    /// result (identical inputs, identical answer). Requires a prior
    /// [`BrBoundCache::ensure`] against the same network and insert log;
    /// `current` must be the agent's exact current cost (it seeds the
    /// incumbent). Under `debug_assertions` every call re-derives the
    /// fresh tables and asserts bound admissibility per node plus a
    /// bitwise-equal chosen strategy and cost.
    pub fn best_response(
        &mut self,
        game: &Game,
        profile: &Profile,
        network: &AdjacencyList,
        current: f64,
    ) -> BestResponse {
        debug_assert!(self.built, "best_response on an unbuilt BrBoundCache");
        // Memo hit: no delta has touched the cache since the last search
        // and the query (current strategy + exact current cost) is bit
        // for bit the same, so the inputs of the search are literally
        // identical and the previous result *is* the fresh result. The
        // debug oracle below still re-derives and checks it.
        let memoized = self
            .memo
            .as_ref()
            .filter(|(set, prev)| {
                prev.current_cost.to_bits() == current.to_bits()
                    && set == profile.strategy(self.agent)
            })
            .map(|(_, prev)| prev.clone());
        if let Some(result) = memoized {
            #[cfg(debug_assertions)]
            self.assert_matches_fresh(game, profile, network, current, &result);
            #[cfg(not(debug_assertions))]
            let _ = network;
            return result;
        }
        if self.csr_dirty {
            self.csr = Csr::from_adjacency(&self.base);
            self.csr_dirty = false;
        }
        if self.via_dirty {
            self.rebuild_via();
        }
        let worker = &mut self.worker;
        worker.reset(
            self.agent,
            self.n,
            self.d0.dist(),
            self.weight_class,
            current,
            profile.strategy(self.agent),
        );
        let view = BrSearchView {
            game,
            agent: self.agent,
            n: self.n,
            csr: &self.csr,
            candidates: &self.candidates,
            cand_w: &self.cand_w,
            via: &self.via,
        };
        view.evaluate_current(worker);
        view.dfs(worker, 0, 0.0);
        let result = worker.take_result(current);
        #[cfg(debug_assertions)]
        self.assert_matches_fresh(game, profile, network, current, &result);
        #[cfg(not(debug_assertions))]
        let _ = network;
        self.memo = Some((profile.strategy(self.agent).clone(), result.clone()));
        result
    }

    /// The PR 4–5 oracle: rebuild the per-activation search state from
    /// scratch and require (a) the lock-step base graph, (b) a bitwise
    /// `d0`, (c) per-node bound admissibility (cached `via` ≤ fresh
    /// `via` — the fresh bound is the exact optimistic distance, so `≤`
    /// *is* admissibility), and (d) a bitwise-identical chosen strategy
    /// and cost.
    #[cfg(debug_assertions)]
    fn assert_matches_fresh(
        &self,
        game: &Game,
        profile: &Profile,
        network: &AdjacencyList,
        current: f64,
        got: &BestResponse,
    ) {
        let fresh_base = base_graph_from(network, profile, self.agent);
        let mut a: Vec<_> = self.base.edges().collect();
        let mut b: Vec<_> = fresh_base.edges().collect();
        a.sort_by_key(|e| (e.0, e.1));
        b.sort_by_key(|e| (e.0, e.1));
        assert_eq!(
            a, b,
            "BrBoundCache base graph of agent {} drifted from base_graph_from",
            self.agent
        );
        let search = BrSearch::new(game, self.agent, &fresh_base);
        assert_eq!(
            self.d0.dist(),
            search.d0.as_slice(),
            "BrBoundCache d0 of agent {} drifted from a fresh Dijkstra",
            self.agent
        );
        assert_eq!(self.via.len(), search.via.len());
        for (i, (&cached, &fresh)) in self.via.iter().zip(search.via.iter()).enumerate() {
            assert!(
                cached <= fresh,
                "inadmissible cached bound for agent {}: via[{}] = {} > fresh {}",
                self.agent,
                i,
                cached,
                fresh
            );
        }
        let view = search.view();
        let mut worker = BrWorker::fresh(&search, current, profile.strategy(self.agent));
        view.evaluate_current(&mut worker);
        view.dfs(&mut worker, 0, 0.0);
        assert_eq!(
            got.strategy, worker.best_set,
            "cached best response of agent {} diverged from a fresh BrSearch",
            self.agent
        );
        assert_eq!(
            got.cost.to_bits(),
            worker.best_cost.to_bits(),
            "cached best-response cost of agent {} diverged from a fresh BrSearch",
            self.agent
        );
    }
}

/// The historical from-scratch engine: one Dijkstra per leaf, pruned only
/// by the static host-closure bound. Kept as the equivalence oracle for
/// the incremental engine (the `br_equivalence` proptests) and as the
/// baseline the `best_response` bench measures speedups against.
pub fn exact_best_response_reference(
    game: &Game,
    profile: &Profile,
    agent: NodeId,
) -> BestResponse {
    let n = game.n();
    let base = base_graph_without(game, profile, agent);
    let network = profile.build_network(game);
    let current = agent_cost_in(game, profile, &network, agent).total();

    // Distance lower bound: Σ_v d_H(agent, v).
    let dist_lb: f64 = game.host_distances().row(agent).iter().sum();

    let mut candidates: Vec<NodeId> = (0..n as NodeId).filter(|&v| v != agent).collect();
    candidates.sort_by(|&a, &b| game.w(agent, a).total_cmp(&game.w(agent, b)));

    let mut best_cost = current;
    let mut best_set: BTreeSet<NodeId> = profile.strategy(agent).clone();
    let mut evaluated = 0usize;
    let mut chosen: Vec<NodeId> = Vec::new();
    dfs_reference(
        game,
        &base,
        agent,
        &candidates,
        0,
        &mut chosen,
        0.0,
        dist_lb,
        &mut best_cost,
        &mut best_set,
        &mut evaluated,
    );

    BestResponse {
        strategy: best_set,
        cost: best_cost,
        current_cost: current,
        evaluated,
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs_reference(
    game: &Game,
    base: &AdjacencyList,
    agent: NodeId,
    candidates: &[NodeId],
    idx: usize,
    chosen: &mut Vec<NodeId>,
    edge_cost: f64,
    dist_lb: f64,
    best_cost: &mut f64,
    best_set: &mut BTreeSet<NodeId>,
    evaluated: &mut usize,
) {
    // Admissible bound: committed α-weighted edge cost + host-distance LB.
    if game.alpha() * edge_cost + dist_lb >= *best_cost - gncg_graph::EPS {
        return;
    }
    if idx == candidates.len() {
        let set: BTreeSet<NodeId> = chosen.iter().copied().collect();
        let c = candidate_cost(game, base, agent, &set);
        *evaluated += 1;
        if strictly_less(c.total(), *best_cost) {
            *best_cost = c.total();
            *best_set = set;
        }
        return;
    }
    let v = candidates[idx];
    chosen.push(v);
    dfs_reference(
        game,
        base,
        agent,
        candidates,
        idx + 1,
        chosen,
        edge_cost + game.w(agent, v),
        dist_lb,
        best_cost,
        best_set,
        evaluated,
    );
    chosen.pop();
    dfs_reference(
        game,
        base,
        agent,
        candidates,
        idx + 1,
        chosen,
        edge_cost,
        dist_lb,
        best_cost,
        best_set,
        evaluated,
    );
}

/// The best single greedy move (add / delete / swap) of `agent`, if any
/// strictly improving one exists. Returns the move together with the cost
/// it achieves.
pub fn best_greedy_move(game: &Game, profile: &Profile, agent: NodeId) -> Option<(Move, f64)> {
    best_move_among(game, profile, agent, &Move::greedy_moves(profile, agent))
}

/// [`best_greedy_move`] reusing an already-built network.
pub fn best_greedy_move_in(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    agent: NodeId,
) -> Option<(Move, f64)> {
    best_greedy_move_in_costed(game, profile, network, agent).1
}

/// [`best_greedy_move_in`] that also returns the agent's current cost —
/// the move scan computes it anyway, and the dynamics engine needs both
/// (one SSSP instead of two per activation).
pub fn best_greedy_move_in_costed(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    agent: NodeId,
) -> (f64, Option<(Move, f64)>) {
    best_move_among_in_costed(
        game,
        profile,
        network,
        agent,
        &Move::greedy_moves(profile, agent),
    )
}

/// The best single edge *addition* of `agent`, if an improving one exists
/// (the move space of Add-only Equilibria).
pub fn best_add_move(game: &Game, profile: &Profile, agent: NodeId) -> Option<(Move, f64)> {
    best_move_among(game, profile, agent, &Move::add_moves(profile, agent))
}

/// [`best_add_move`] reusing an already-built network.
pub fn best_add_move_in(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    agent: NodeId,
) -> Option<(Move, f64)> {
    best_add_move_in_costed(game, profile, network, agent).1
}

/// [`best_add_move_in`] that also returns the agent's current cost.
pub fn best_add_move_in_costed(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    agent: NodeId,
) -> (f64, Option<(Move, f64)>) {
    best_move_among_in_costed(
        game,
        profile,
        network,
        agent,
        &Move::add_moves(profile, agent),
    )
}

/// Evaluates a set of moves and returns the best strictly-improving one.
pub fn best_move_among(
    game: &Game,
    profile: &Profile,
    agent: NodeId,
    moves: &[Move],
) -> Option<(Move, f64)> {
    let network = profile.build_network(game);
    best_move_among_in(game, profile, &network, agent, moves)
}

/// [`best_move_among`] reusing an already-built network: the network is
/// built (or cached) once and the base graph is derived from it, instead
/// of the historical double build per evaluation.
pub fn best_move_among_in(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    agent: NodeId,
    moves: &[Move],
) -> Option<(Move, f64)> {
    best_move_among_in_costed(game, profile, network, agent, moves).1
}

/// [`best_move_among_in`] that also returns the agent's current cost,
/// which the incumbent comparison computes anyway.
pub fn best_move_among_in_costed(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    agent: NodeId,
    moves: &[Move],
) -> (f64, Option<(Move, f64)>) {
    let current = agent_cost_in(game, profile, network, agent).total();
    (
        current,
        best_move_among_given_current(game, profile, network, agent, current, moves),
    )
}

/// [`best_move_among_in_costed`] with the agent's current cost supplied
/// by the caller (see [`exact_best_response_given_current`] for the
/// contract on `current`).
///
/// Prices every candidate with a masked from-scratch Dijkstra
/// ([`candidate_cost`]) — the historical scan, kept as the equivalence
/// **oracle** and measured baseline of the speculative scan
/// ([`best_move_among_speculative`]), which produces bitwise-identical
/// choices and totals off a warm distance vector.
pub fn best_move_among_given_current(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    agent: NodeId,
    current: f64,
    moves: &[Move],
) -> Option<(Move, f64)> {
    let base = base_graph_from(network, profile, agent);
    let own = profile.strategy(agent);
    let mut best: Option<(Move, f64)> = None;
    for m in moves {
        let cand = m.apply(agent, own);
        let c = candidate_cost(game, &base, agent, &cand).total();
        let incumbent = best.as_ref().map_or(current, |&(_, b)| b);
        if strictly_less(c, incumbent) {
            best = Some((m.clone(), c));
        }
    }
    best
}

/// [`best_move_among_given_current`] evaluated **speculatively** against
/// the agent's warm distance vector instead of one masked Dijkstra per
/// candidate.
///
/// `warm` must hold the agent's exact distance vector in `network`
/// (source `agent`, bitwise what a fresh Dijkstra produces — e.g. the
/// dynamics engine's warm per-agent vector), and `current` the agent's
/// exact current total cost. Each single-edge candidate is priced by the
/// speculation-frame lifecycle of `gncg_graph::csr`:
///
/// 1. **apply** — open a frame and stage the move's network-level edge
///    delta on the vector: a dropped sole-owned edge is a logged
///    Ramalingam–Reps repair over a [`MaskedEdges`] view of `network`
///    (the graph itself is never mutated), a genuinely new edge is a
///    logged source-incident relaxation;
/// 2. **read** — the candidate's distance cost is the warm sum, in the
///    same index order the oracle sums its Dijkstra vector, and its edge
///    cost re-accumulates in ascending node-id order, matching
///    [`candidate_cost`]'s `BTreeSet` iteration bit for bit;
/// 3. **rollback** — the frame restores the pre-move vector bitwise, so
///    the next candidate starts from the same warm state.
///
/// Degenerate deltas (dropping a co-owned edge, gaining an
/// already-present one) change no distances and read the current sum
/// directly. [`Move::Replace`] candidates are not single-edge deltas and
/// fall back to the oracle's [`candidate_cost`] pricing.
///
/// Returns exactly what [`best_move_among_given_current`] returns — the
/// same chosen move and the same cost bits (debug-asserted against the
/// oracle, alongside the bitwise restoration of `warm`).
///
/// Every move must be *valid for `profile`* in the [`Move::apply`] sense
/// (deletes and swap-drops name owned edges, adds and swap-gains name
/// non-owned ones) — the shape [`Move::greedy_moves`] /
/// [`Move::add_moves`] enumerate. The oracle enforces this with
/// assertions inside `Move::apply`; this path relies on it (an invalid
/// move may panic on a missing network edge or price the edge term
/// differently from a set-based candidate).
///
/// This entry point always prices with [`SpeculativePricing::FullSum`];
/// [`best_move_among_speculative_priced`] exposes the bounded-horizon
/// [`SpeculativePricing::RegionDelta`] policy.
pub fn best_move_among_speculative(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    warm: &mut DynamicSssp,
    agent: NodeId,
    current: f64,
    moves: &[Move],
) -> Option<(Move, f64)> {
    best_move_among_speculative_priced(
        game,
        profile,
        network,
        warm,
        agent,
        current,
        moves,
        SpeculativePricing::FullSum,
    )
}

/// How the speculative move scan reads a candidate's distance cost off
/// the warm vector.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpeculativePricing {
    /// Re-sum the whole `n`-length vector per candidate — `O(n)` per
    /// move, bitwise-identical to the masked-Dijkstra oracle, the
    /// policy every pre-existing golden was recorded under.
    #[default]
    FullSum,
    /// Bounded-horizon pricing: one full sum per scan, then each
    /// candidate is priced as `sum₀ + Σ_{v touched} (dist(v) − dist₀(v))`
    /// over the speculation undo log, with the speculative relaxation
    /// itself truncated after [`PRICE_HORIZON`] settled nodes — `O(horizon)`
    /// per move instead of the `O(n)` re-sum *or* the `Θ(n)` exact region
    /// repair a good candidate edge floods through a mid-run network.
    /// Truncated prices are sound upper bounds (the abandoned frontier
    /// keeps its valid pre-insert distances), so ranking is approximate;
    /// the winner is re-priced with the horizon cleared and an exact full
    /// sum (and re-gated against `current`) before being returned, so
    /// the *reported* move cost is always oracle-exact. A candidate whose
    /// upper bound never beats the incumbent can be missed — a distinct
    /// deterministic dynamics, not a bitwise re-expression of
    /// [`Self::FullSum`] — which is why it is opt-in, participates in
    /// scenario digests, and carries its own goldens. Below `n ≈
    /// PRICE_HORIZON` the truncation can never trigger and only sub-ulp
    /// delta re-association separates the two policies.
    RegionDelta,
}

/// Settle budget of [`SpeculativePricing::RegionDelta`]'s per-candidate
/// speculative relaxations (see [`DynamicSssp::set_price_horizon`]). A
/// fixed constant of the policy — it shapes which moves the bounded
/// dynamics chooses, so tuning it is a byte-stream-breaking change.
pub const PRICE_HORIZON: usize = 16;

/// [`best_move_among_speculative`] with an explicit pricing policy —
/// see [`SpeculativePricing`] for the contract of each mode.
#[allow(clippy::too_many_arguments)]
pub fn best_move_among_speculative_priced(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    warm: &mut DynamicSssp,
    agent: NodeId,
    current: f64,
    moves: &[Move],
    pricing: SpeculativePricing,
) -> Option<(Move, f64)> {
    #[cfg(debug_assertions)]
    let before: Vec<f64> = warm.dist().to_vec();
    // One O(n) sum for the whole scan under RegionDelta; FullSum keeps
    // its historical lazy reads (degenerate deltas only).
    let sum0 = match pricing {
        SpeculativePricing::FullSum => 0.0,
        SpeculativePricing::RegionDelta => warm.sum(),
    };
    // Bounded horizon: candidate relaxations settle at most PRICE_HORIZON
    // nodes (upper-bound prices); cleared again before the winner's exact
    // re-price below. Only speculation frames consult the budget, so a
    // stray setting could never leak into committed repairs.
    if pricing == SpeculativePricing::RegionDelta {
        warm.set_price_horizon(Some(PRICE_HORIZON));
    }
    let own = profile.strategy(agent);
    let alpha = game.alpha();
    // Replace moves price through the oracle path; its base graph is
    // derived at most once.
    let mut base: Option<AdjacencyList> = None;
    let mut best: Option<(Move, f64)> = None;
    let update = |m: &Move, c: f64, best: &mut Option<(Move, f64)>| {
        let incumbent = best.as_ref().map_or(current, |&(_, b)| b);
        if strictly_less(c, incumbent) {
            *best = Some((m.clone(), c));
        }
    };
    let mut i = 0;
    while i < moves.len() {
        // Consecutive swaps dropping the same sole-owned edge (the shape
        // `Move::greedy_moves` enumerates) share one removal repair:
        // frames nest, so the dropped edge is repaired once in an outer
        // frame and each add target is an inner insert + rollback —
        // `k` removals for `k·(n−1−k)` swap candidates, not one each.
        if let Move::Swap(d, _) = moves[i] {
            if !profile.owns(d, agent) {
                let run = moves[i..]
                    .iter()
                    .take_while(|m| matches!(m, Move::Swap(dd, _) if *dd == d))
                    .count();
                let w = network
                    .edge_weight(agent, d)
                    .expect("sole-owned strategy edge must be in the network");
                let mask = [(agent, d)];
                let view = MaskedEdges::new(network, &mask);
                // The mark is taken before the outer removal frame, so a
                // RegionDelta price covers the removal repair *and* the
                // inner insert in one undo-log suffix.
                let mark = warm.undo_len();
                warm.begin_speculation();
                warm.remove_edge(&view, agent, d, w);
                for m in &moves[i..i + run] {
                    let &Move::Swap(_, a) = m else { unreachable!() };
                    let dist = if network.has_edge(agent, a) {
                        // Gained edge already present: the removal repair
                        // is the whole delta.
                        frame_price(warm, pricing, sum0, mark)
                    } else {
                        warm.begin_speculation();
                        warm.speculate_insert(&view, agent, a, game.w(agent, a));
                        let s = frame_price(warm, pricing, sum0, mark);
                        warm.rollback();
                        s
                    };
                    let c = alpha * candidate_edge_sum(game, agent, own, m) + dist;
                    update(m, c, &mut best);
                }
                warm.rollback();
                i += run;
                continue;
            }
        }
        let m = &moves[i];
        let c = match m {
            Move::Replace(cand) => {
                let base = base.get_or_insert_with(|| base_graph_from(network, profile, agent));
                candidate_cost(game, base, agent, cand).total()
            }
            _ => {
                let dist =
                    speculative_distance_sum(game, profile, network, warm, agent, m, pricing, sum0);
                alpha * candidate_edge_sum(game, agent, own, m) + dist
            }
        };
        update(m, c, &mut best);
        i += 1;
    }
    // RegionDelta ranked the candidates on approximate prices; the
    // reported cost must be oracle-exact, so the winner is re-priced
    // with a full sum and re-gated against `current` (a sub-ulp
    // "improvement" that was an artifact of delta re-association must
    // not be reported as improving).
    if pricing == SpeculativePricing::RegionDelta {
        warm.set_price_horizon(None);
        best = best.and_then(|(m, c)| match m {
            // Replace moves were priced exactly by the oracle path.
            Move::Replace(_) => strictly_less(c, current).then_some((m, c)),
            _ => {
                let dist = speculative_distance_sum(
                    game,
                    profile,
                    network,
                    warm,
                    agent,
                    &m,
                    SpeculativePricing::FullSum,
                    0.0,
                );
                let exact = alpha * candidate_edge_sum(game, agent, own, &m) + dist;
                strictly_less(exact, current).then_some((m, exact))
            }
        });
    }
    #[cfg(debug_assertions)]
    {
        debug_assert!(
            warm.dist() == before.as_slice() && warm.depth() == 0 && warm.speculation_depth() == 0,
            "speculative scan must leave the warm vector bitwise untouched"
        );
        match pricing {
            SpeculativePricing::FullSum => {
                let oracle =
                    best_move_among_given_current(game, profile, network, agent, current, moves);
                debug_assert_eq!(
                    best, oracle,
                    "speculative scan drifted from the masked-Dijkstra oracle"
                );
            }
            SpeculativePricing::RegionDelta => {
                // The chosen move may legitimately differ from FullSum on
                // sub-ulp ties, but the reported cost of whatever *was*
                // chosen must be bitwise what the oracle prices it at.
                if let Some((m, c)) = &best {
                    let oracle = best_move_among_given_current(
                        game,
                        profile,
                        network,
                        agent,
                        current,
                        std::slice::from_ref(m),
                    );
                    debug_assert_eq!(
                        oracle,
                        Some((m.clone(), *c)),
                        "region-delta winner's exact re-price drifted from the oracle"
                    );
                }
            }
        }
    }
    best
}

/// Reads the current candidate's distance cost off an open speculation
/// frame according to the pricing policy. `mark` is the undo-log length
/// from just before the frame (chain) opened; `sum0` the pre-scan full
/// sum (RegionDelta only). A non-finite delta price (∞ − ∞ churn from
/// disconnections) falls back to the exact full sum for that candidate.
fn frame_price(warm: &mut DynamicSssp, pricing: SpeculativePricing, sum0: f64, mark: usize) -> f64 {
    match pricing {
        SpeculativePricing::FullSum => warm.sum(),
        SpeculativePricing::RegionDelta => {
            let p = sum0 + warm.delta_sum_since(mark);
            if p.is_finite() {
                p
            } else {
                warm.sum()
            }
        }
    }
}

/// The distance cost of single-edge move `m`, read off `warm` after
/// speculatively applying the move's network-level edge delta (an owned
/// edge leaves the network only when the other endpoint does not also own
/// it; a new edge enters only when not already present — the same rules
/// the dynamics engine applies to committed moves).
#[allow(clippy::too_many_arguments)]
fn speculative_distance_sum(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    warm: &mut DynamicSssp,
    agent: NodeId,
    m: &Move,
    pricing: SpeculativePricing,
    sum0: f64,
) -> f64 {
    let (dropped, gained) = match *m {
        Move::Add(v) => (None, Some(v)),
        Move::Delete(v) => (Some(v), None),
        Move::Swap(d, a) => (Some(d), Some(a)),
        Move::Replace(_) => unreachable!("Replace moves are priced by the oracle path"),
    };
    let dropped = dropped.filter(|&v| !profile.owns(v, agent));
    let gained = gained.filter(|&v| !network.has_edge(agent, v));
    if dropped.is_none() && gained.is_none() {
        // Degenerate delta: the network (hence the vector) is unchanged,
        // so the pre-scan sum *is* the exact price under either policy.
        return match pricing {
            SpeculativePricing::FullSum => warm.sum(),
            SpeculativePricing::RegionDelta => sum0,
        };
    }
    let mask_buf;
    let mask: &[(NodeId, NodeId)] = match dropped {
        Some(v) => {
            mask_buf = [(agent, v)];
            &mask_buf
        }
        None => &[],
    };
    let view = MaskedEdges::new(network, mask);
    let mark = warm.undo_len();
    warm.begin_speculation();
    if let Some(v) = dropped {
        let w = network
            .edge_weight(agent, v)
            .expect("sole-owned strategy edge must be in the network");
        warm.remove_edge(&view, agent, v, w);
    }
    if let Some(v) = gained {
        warm.speculate_insert(&view, agent, v, game.w(agent, v));
    }
    let sum = frame_price(warm, pricing, sum0, mark);
    warm.rollback();
    sum
}

/// `Σ w(agent, x)` over the candidate set `m` produces from `own`,
/// accumulated in ascending node-id order — the `BTreeSet` iteration
/// order [`candidate_cost`]'s edge term uses, so totals agree bitwise
/// (f64 addition is order-sensitive).
fn candidate_edge_sum(game: &Game, agent: NodeId, own: &BTreeSet<NodeId>, m: &Move) -> f64 {
    let (drop, add) = match *m {
        Move::Add(v) => (None, Some(v)),
        Move::Delete(v) => (Some(v), None),
        Move::Swap(d, a) => (Some(d), Some(a)),
        Move::Replace(_) => unreachable!("Replace moves are priced by the oracle path"),
    };
    let mut sum = 0.0;
    let mut pending = add;
    for &x in own {
        if Some(x) == drop {
            continue;
        }
        if let Some(a) = pending {
            if a < x {
                sum += game.w(agent, a);
                pending = None;
            }
        }
        sum += game.w(agent, x);
    }
    if let Some(a) = pending {
        sum += game.w(agent, a);
    }
    sum
}

/// Prices an explicit move without applying it.
pub fn move_cost(game: &Game, profile: &Profile, agent: NodeId, m: &Move) -> CostBreakdown {
    let base = base_graph_without(game, profile, agent);
    let cand = m.apply(agent, profile.strategy(agent));
    candidate_cost(game, &base, agent, &cand)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_graph::SymMatrix;

    fn unit_game(n: usize, alpha: f64) -> Game {
        Game::new(SymMatrix::filled(n, 1.0), alpha)
    }

    #[test]
    fn isolated_agent_buys_exactly_one_edge_into_a_star() {
        // Star on 4 nodes around 0 (owned by 0); agent 3 removed from the
        // star and isolated. Its best response for α = 1 is to buy the
        // cheapest connection, via the center (all weights 1, so any single
        // edge to the center is optimal: dist 1 + 2 + 2 vs edge 1).
        let game = unit_game(4, 5.0);
        let mut p = Profile::empty(4);
        p.buy(0, 1);
        p.buy(0, 2);
        let br = exact_best_response(&game, &p, 3);
        assert!(br.improves()); // currently disconnected, cost ∞
        assert_eq!(br.strategy.len(), 1);
        assert!(br.strategy.contains(&0));
        // α·1 + (1 + 2 + 2) = 10.
        assert_eq!(br.cost, 10.0);
    }

    #[test]
    fn low_alpha_buys_everything() {
        // For tiny α the best response is to connect directly to everyone.
        let game = unit_game(5, 0.01);
        let p = Profile::star(5, 0);
        let br = exact_best_response(&game, &p, 2);
        assert_eq!(
            br.strategy.len(),
            3,
            "buy direct edges to all non-neighbors"
        );
        assert!(br.improves());
    }

    #[test]
    fn high_alpha_keeps_nothing_extra() {
        // Star center 0 owns all edges; leaf 1 should buy nothing at high α.
        let game = unit_game(5, 100.0);
        let p = Profile::star(5, 0);
        let br = exact_best_response(&game, &p, 1);
        assert!(!br.improves());
        assert!(br.strategy.is_empty());
    }

    #[test]
    fn exact_br_at_least_as_good_as_greedy() {
        let host = gncg_metrics::arbitrary::random_metric(8, 1.0, 4.0, 17);
        let game = Game::new(host, 1.5);
        let mut p = Profile::star(8, 0);
        p.buy(3, 4);
        for agent in 0..8 {
            let br = exact_best_response(&game, &p, agent);
            if let Some((_, g)) = best_greedy_move(&game, &p, agent) {
                assert!(
                    br.cost <= g + 1e-9,
                    "agent {agent}: BR {} > greedy {g}",
                    br.cost
                );
            }
            assert!(br.cost <= br.current_cost + 1e-9);
        }
    }

    #[test]
    fn incremental_matches_reference_cost_exactly() {
        // Bit-for-bit equivalence of the incremental engine against the
        // historical from-scratch engine, across α regimes.
        for seed in 0..4u64 {
            let host = gncg_metrics::arbitrary::random_metric(8, 1.0, 4.0, seed);
            for alpha in [0.05, 0.6, 1.5, 4.0, 50.0] {
                let game = Game::new(host.clone(), alpha);
                let mut p = Profile::star(8, (seed % 8) as NodeId);
                p.buy(2, 5);
                for agent in 0..8u32 {
                    let inc = exact_best_response(&game, &p, agent);
                    let refr = exact_best_response_reference(&game, &p, agent);
                    assert_eq!(
                        inc.cost, refr.cost,
                        "seed {seed} α {alpha} agent {agent}: {} vs {}",
                        inc.cost, refr.cost
                    );
                    assert_eq!(inc.current_cost, refr.current_cost);
                }
            }
        }
    }

    #[test]
    fn incremental_strategy_achieves_reported_cost() {
        for seed in 0..3u64 {
            let host = gncg_metrics::arbitrary::random_metric(7, 1.0, 5.0, seed + 100);
            let game = Game::new(host, 1.1);
            let mut p = Profile::star(7, 0);
            p.buy(4, 6);
            for agent in 0..7u32 {
                let br = exact_best_response(&game, &p, agent);
                let mut p2 = p.clone();
                p2.set_strategy(agent, br.strategy.clone());
                let real = crate::cost::agent_cost(&game, &p2, agent).total();
                assert!(
                    gncg_graph::approx_eq(real, br.cost),
                    "agent {agent}: {real} vs {}",
                    br.cost
                );
            }
        }
    }

    #[test]
    fn best_greedy_move_finds_add() {
        // Path 0-1-2-3 with unit weights, α = 0.1: endpoints want shortcuts.
        let game = unit_game(4, 0.1);
        let p = Profile::from_owned_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let (m, c) = best_greedy_move(&game, &p, 0).expect("improving move exists");
        match m {
            Move::Add(v) => assert!(v == 2 || v == 3),
            other => panic!("expected Add, got {other:?}"),
        }
        assert!(c < agent_cost_in(&game, &p, &p.build_network(&game), 0).total());
    }

    #[test]
    fn best_greedy_move_finds_delete() {
        // Triangle where 0 owns a redundant heavy edge.
        let mut w = SymMatrix::filled(3, 1.0);
        w.set(0, 2, 1.5);
        let game = Game::new(w, 10.0);
        let p = Profile::from_owned_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let (m, _) = best_greedy_move(&game, &p, 0).expect("delete should improve");
        assert_eq!(m, Move::Delete(2));
    }

    #[test]
    fn move_cost_matches_application() {
        let game = unit_game(5, 2.0);
        let p = Profile::star(5, 0);
        let m = Move::Add(2);
        let predicted = move_cost(&game, &p, 1, &m).total();
        let mut p2 = p.clone();
        p2.buy(1, 2);
        let real = crate::cost::agent_cost(&game, &p2, 1).total();
        assert!(gncg_graph::approx_eq(predicted, real));
    }

    #[test]
    fn speculative_scan_matches_oracle_bitwise() {
        // Every greedy move of every agent, across α regimes, with a
        // co-owned edge in play: the speculative scan must return exactly
        // the oracle's chosen move and cost bits, and leave the warm
        // vector untouched.
        for seed in 0..4u64 {
            let host = gncg_metrics::arbitrary::random_metric(8, 1.0, 4.0, seed);
            for alpha in [0.3, 1.5, 6.0] {
                let game = Game::new(host.clone(), alpha);
                let mut p = Profile::star(8, (seed % 8) as NodeId);
                p.buy(2, 5);
                if !p.owns(5, 2) {
                    p.buy(5, 2); // co-owned: its Delete is a degenerate delta
                }
                let network = p.build_network(&game);
                for agent in 0..8u32 {
                    let moves = Move::greedy_moves(&p, agent);
                    let current = agent_cost_in(&game, &p, &network, agent).total();
                    let mut warm = DynamicSssp::new();
                    warm.reset_from(agent, &gncg_graph::dijkstra::dijkstra(&network, agent));
                    let spec = best_move_among_speculative(
                        &game, &p, &network, &mut warm, agent, current, &moves,
                    );
                    let oracle =
                        best_move_among_given_current(&game, &p, &network, agent, current, &moves);
                    assert_eq!(spec, oracle, "seed {seed} α {alpha} agent {agent}");
                }
            }
        }
    }

    #[test]
    fn region_delta_pricing_matches_oracle_on_clear_instances() {
        // On hosts whose move costs are separated far beyond an ulp, the
        // bounded-horizon policy must choose the oracle's move and report
        // the oracle's exact cost bits — with and without the bucket-queue
        // weight-class hint installed on the warm vector.
        for seed in 0..4u64 {
            let host = gncg_metrics::arbitrary::random_metric(8, 1.0, 4.0, seed);
            for alpha in [0.3, 1.5, 6.0] {
                let game = Game::new(host.clone(), alpha);
                let mut p = Profile::star(8, (seed % 8) as NodeId);
                p.buy(2, 5);
                if !p.owns(5, 2) {
                    p.buy(5, 2);
                }
                let network = p.build_network(&game);
                for agent in 0..8u32 {
                    let moves = Move::greedy_moves(&p, agent);
                    let current = agent_cost_in(&game, &p, &network, agent).total();
                    let mut warm = DynamicSssp::new();
                    warm.set_weight_class(game.weight_class());
                    warm.reset_from(agent, &gncg_graph::dijkstra::dijkstra(&network, agent));
                    let rd = best_move_among_speculative_priced(
                        &game,
                        &p,
                        &network,
                        &mut warm,
                        agent,
                        current,
                        &moves,
                        SpeculativePricing::RegionDelta,
                    );
                    let oracle =
                        best_move_among_given_current(&game, &p, &network, agent, current, &moves);
                    assert_eq!(rd, oracle, "seed {seed} α {alpha} agent {agent}");
                }
            }
        }
    }

    #[test]
    fn region_delta_pricing_survives_disconnection() {
        // ∞ churn in the undo log makes the delta price non-finite; the
        // per-candidate fallback must recover the exact full sum.
        let game = unit_game(4, 0.1);
        let p = Profile::from_owned_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let network = p.build_network(&game);
        for agent in 0..4u32 {
            let moves = Move::greedy_moves(&p, agent);
            let current = agent_cost_in(&game, &p, &network, agent).total();
            let mut warm = DynamicSssp::new();
            warm.reset_from(agent, &gncg_graph::dijkstra::dijkstra(&network, agent));
            let rd = best_move_among_speculative_priced(
                &game,
                &p,
                &network,
                &mut warm,
                agent,
                current,
                &moves,
                SpeculativePricing::RegionDelta,
            );
            let oracle = best_move_among_given_current(&game, &p, &network, agent, current, &moves);
            assert_eq!(rd, oracle, "agent {agent}");
        }
        // Isolated agent: the pre-scan sum is ∞ (sum0 itself non-finite).
        let mut q = Profile::empty(4);
        q.buy(0, 1);
        q.buy(1, 2);
        let network = q.build_network(&game);
        let moves = Move::greedy_moves(&q, 3);
        let current = agent_cost_in(&game, &q, &network, 3).total();
        let mut warm = DynamicSssp::new();
        warm.reset_from(3, &gncg_graph::dijkstra::dijkstra(&network, 3));
        let rd = best_move_among_speculative_priced(
            &game,
            &q,
            &network,
            &mut warm,
            3,
            current,
            &moves,
            SpeculativePricing::RegionDelta,
        );
        let oracle = best_move_among_given_current(&game, &q, &network, 3, current, &moves);
        assert_eq!(rd, oracle);
        assert!(rd.is_some(), "connecting must improve on ∞");
    }

    #[test]
    fn speculative_scan_handles_disconnection_both_ways() {
        // Deleting a bridge prices candidates at ∞; an isolated agent
        // prices its current cost at ∞. Both must match the oracle.
        let game = unit_game(4, 0.1);
        let p = Profile::from_owned_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let network = p.build_network(&game);
        for agent in 0..4u32 {
            let moves = Move::greedy_moves(&p, agent);
            let current = agent_cost_in(&game, &p, &network, agent).total();
            let mut warm = DynamicSssp::new();
            warm.reset_from(agent, &gncg_graph::dijkstra::dijkstra(&network, agent));
            let spec =
                best_move_among_speculative(&game, &p, &network, &mut warm, agent, current, &moves);
            let oracle = best_move_among_given_current(&game, &p, &network, agent, current, &moves);
            assert_eq!(spec, oracle, "agent {agent}");
        }
        // Isolated agent 3: every distance but its own is ∞.
        let mut q = Profile::empty(4);
        q.buy(0, 1);
        q.buy(1, 2);
        let network = q.build_network(&game);
        let moves = Move::greedy_moves(&q, 3);
        let current = agent_cost_in(&game, &q, &network, 3).total();
        assert!(current.is_infinite());
        let mut warm = DynamicSssp::new();
        warm.reset_from(3, &gncg_graph::dijkstra::dijkstra(&network, 3));
        let spec = best_move_among_speculative(&game, &q, &network, &mut warm, 3, current, &moves);
        let oracle = best_move_among_given_current(&game, &q, &network, 3, current, &moves);
        assert_eq!(spec, oracle);
        assert!(spec.is_some(), "connecting must improve on ∞");
    }

    #[test]
    fn parallel_br_matches_sequential_cost() {
        for seed in 0..3u64 {
            let host = gncg_metrics::arbitrary::random_metric(9, 1.0, 4.0, seed);
            let game = Game::new(host, 1.2);
            let mut p = Profile::star(9, 0);
            p.buy(2, 5);
            p.buy(7, 3);
            for agent in 0..9u32 {
                let seq = exact_best_response(&game, &p, agent);
                let par = exact_best_response_parallel(&game, &p, agent);
                assert_eq!(
                    seq.cost, par.cost,
                    "agent {agent} seed {seed}: {} vs {}",
                    seq.cost, par.cost
                );
                assert_eq!(seq.current_cost, par.current_cost);
                // The parallel strategy must achieve its reported cost.
                let mut p2 = p.clone();
                p2.set_strategy(agent, par.strategy.clone());
                let real = crate::cost::agent_cost(&game, &p2, agent).total();
                assert!(gncg_graph::approx_eq(real, par.cost));
            }
        }
    }

    #[test]
    fn parallel_br_tiny_instance_falls_back() {
        let game = unit_game(4, 1.0);
        let p = Profile::star(4, 0);
        let par = exact_best_response_parallel(&game, &p, 1);
        let seq = exact_best_response(&game, &p, 1);
        assert!(gncg_graph::approx_eq(par.cost, seq.cost));
    }

    #[test]
    fn br_in_matches_br_with_fresh_network() {
        let host = gncg_metrics::arbitrary::random_metric(6, 1.0, 3.0, 5);
        let game = Game::new(host, 2.0);
        let p = Profile::star(6, 2);
        let network = p.build_network(&game);
        for agent in 0..6u32 {
            let a = exact_best_response(&game, &p, agent);
            let b = exact_best_response_in(&game, &p, &network, agent);
            assert_eq!(a.cost, b.cost);
            assert_eq!(a.strategy, b.strategy);
        }
    }

    #[test]
    fn br_on_weighted_path_prefers_cheap_edges() {
        // Host: metric from a path with increasing weights. Agent n-1
        // disconnected; best single edge should weigh cheapness vs centrality.
        let t = gncg_graph::WeightedTree::path(&[1.0, 1.0, 10.0]);
        let host = t.metric_closure();
        let game = Game::new(host, 1.0);
        let mut p = Profile::empty(4);
        p.buy(0, 1);
        p.buy(1, 2);
        let br = exact_best_response(&game, &p, 3);
        // Buying (3,2) costs α·10 + dist (10 + 11 + 12) — best option is
        // still a connection; exact solver must find the cheapest total.
        assert!(br.cost.is_finite());
        assert!(!br.strategy.is_empty());
        // Verify optimality against brute force over all 7 nonempty subsets.
        let base = base_graph_without(&game, &p, 3);
        let mut brute = f64::INFINITY;
        for mask in 1u32..8 {
            let set: BTreeSet<NodeId> = (0..3)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| i as NodeId)
                .collect();
            let c = candidate_cost(&game, &base, 3, &set).total();
            brute = brute.min(c);
        }
        assert!(gncg_graph::approx_eq(br.cost, brute));
    }
}
