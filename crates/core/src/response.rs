//! Best responses: exact (branch-and-bound) and greedy single moves.
//!
//! Computing an exact best response is NP-hard in every variant of the
//! game (Corollary 1, Theorems 13 and 16), so the exact solver here is an
//! exponential branch-and-bound over candidate edge subsets, effective for
//! the instance sizes of the experiments (n ≲ 20) and for the structured
//! reduction gadgets where the pruning bound collapses the search space.
//!
//! The admissible pruning bound uses `d_{G(s)}(u, v) ≥ d_H(u, v)`: any
//! built network is a subgraph of the host, so the host's shortest-path
//! distances lower-bound every candidate's distance cost.

use std::collections::BTreeSet;

use gncg_graph::{strictly_less, AdjacencyList, NodeId};

use crate::cost::{agent_cost_in, base_graph_without, candidate_cost, CostBreakdown};
use crate::{Game, Move, Profile};

/// Result of a best-response computation.
#[derive(Clone, Debug)]
pub struct BestResponse {
    /// The optimal strategy found.
    pub strategy: BTreeSet<NodeId>,
    /// Its cost for the agent.
    pub cost: f64,
    /// The agent's current cost before deviating.
    pub current_cost: f64,
    /// Number of candidate subsets fully evaluated (diagnostic).
    pub evaluated: usize,
}

impl BestResponse {
    /// Whether the best response strictly improves on the current strategy.
    pub fn improves(&self) -> bool {
        strictly_less(self.cost, self.current_cost)
    }
}

/// Exact best response of `agent` via depth-first branch-and-bound over
/// subsets of `V \ {agent}`.
///
/// Candidates are considered in order of increasing host weight; a branch
/// is pruned as soon as its committed edge cost plus the host-distance
/// lower bound cannot beat the incumbent. The agent's *current* strategy
/// seeds the incumbent, so the search also certifies equilibria quickly.
pub fn exact_best_response(game: &Game, profile: &Profile, agent: NodeId) -> BestResponse {
    let n = game.n();
    let base = base_graph_without(game, profile, agent);
    let network = profile.build_network(game);
    let current = agent_cost_in(game, profile, &network, agent).total();

    // Distance lower bound: Σ_v d_H(agent, v).
    let dist_lb: f64 = game.host_distances().row(agent).iter().sum();

    let mut candidates: Vec<NodeId> = (0..n as NodeId).filter(|&v| v != agent).collect();
    candidates.sort_by(|&a, &b| game.w(agent, a).total_cmp(&game.w(agent, b)));

    let mut best_cost = current;
    let mut best_set: BTreeSet<NodeId> = profile.strategy(agent).clone();
    let mut evaluated = 0usize;

    // Iterative DFS over include/exclude decisions. A frame is
    // (next_index, chosen_so_far, committed_edge_cost).
    let mut chosen: Vec<NodeId> = Vec::new();
    dfs(
        game,
        &base,
        agent,
        &candidates,
        0,
        &mut chosen,
        0.0,
        dist_lb,
        &mut best_cost,
        &mut best_set,
        &mut evaluated,
    );

    BestResponse {
        strategy: best_set,
        cost: best_cost,
        current_cost: current,
        evaluated,
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    game: &Game,
    base: &AdjacencyList,
    agent: NodeId,
    candidates: &[NodeId],
    idx: usize,
    chosen: &mut Vec<NodeId>,
    edge_cost: f64,
    dist_lb: f64,
    best_cost: &mut f64,
    best_set: &mut BTreeSet<NodeId>,
    evaluated: &mut usize,
) {
    // Admissible bound: committed α-weighted edge cost + host-distance LB.
    if game.alpha() * edge_cost + dist_lb >= *best_cost - gncg_graph::EPS {
        // No extension (which only adds edge cost) can beat the incumbent,
        // and neither can completions that stop adding: the one candidate
        // completion with the committed edge set is also dominated by the
        // same bound. Evaluate nothing below this node.
        return;
    }
    if idx == candidates.len() {
        let set: BTreeSet<NodeId> = chosen.iter().copied().collect();
        let c = candidate_cost(game, base, agent, &set);
        *evaluated += 1;
        if strictly_less(c.total(), *best_cost) {
            *best_cost = c.total();
            *best_set = set;
        }
        return;
    }
    let v = candidates[idx];
    // Branch 1: include v.
    chosen.push(v);
    dfs(
        game,
        base,
        agent,
        candidates,
        idx + 1,
        chosen,
        edge_cost + game.w(agent, v),
        dist_lb,
        best_cost,
        best_set,
        evaluated,
    );
    chosen.pop();
    // Branch 2: exclude v.
    dfs(
        game,
        base,
        agent,
        candidates,
        idx + 1,
        chosen,
        edge_cost,
        dist_lb,
        best_cost,
        best_set,
        evaluated,
    );
}

/// Rayon-parallel exact best response: the include/exclude tree is split
/// at the first `SPLIT_DEPTH` candidate decisions into `2^SPLIT_DEPTH`
/// independent subtree searches that run on the rayon pool, each with its
/// own incumbent seeded by the agent's current cost; results reduce to the
/// global optimum. Produces exactly the same *cost* as
/// [`exact_best_response`] (the strategy may differ among ties).
///
/// Worth it from roughly `n ≥ 14` candidates; below that the sequential
/// search wins (the bench `best_response.rs` quantifies the crossover).
pub fn exact_best_response_parallel(
    game: &Game,
    profile: &Profile,
    agent: NodeId,
) -> BestResponse {
    use rayon::prelude::*;
    const SPLIT_DEPTH: usize = 4;

    let n = game.n();
    let base = base_graph_without(game, profile, agent);
    let network = profile.build_network(game);
    let current = agent_cost_in(game, profile, &network, agent).total();
    let dist_lb: f64 = game.host_distances().row(agent).iter().sum();

    let mut candidates: Vec<NodeId> = (0..n as NodeId).filter(|&v| v != agent).collect();
    candidates.sort_by(|&a, &b| game.w(agent, a).total_cmp(&game.w(agent, b)));

    if candidates.len() <= SPLIT_DEPTH {
        return exact_best_response(game, profile, agent);
    }

    let split = SPLIT_DEPTH.min(candidates.len());
    let results: Vec<(f64, BTreeSet<NodeId>, usize)> = (0u32..(1 << split))
        .into_par_iter()
        .map(|prefix_mask| {
            let mut chosen: Vec<NodeId> = Vec::new();
            let mut edge_cost = 0.0;
            for (i, &v) in candidates.iter().take(split).enumerate() {
                if prefix_mask & (1 << i) != 0 {
                    chosen.push(v);
                    edge_cost += game.w(agent, v);
                }
            }
            let mut best_cost = current;
            let mut best_set: BTreeSet<NodeId> = profile.strategy(agent).clone();
            let mut evaluated = 0usize;
            dfs(
                game,
                &base,
                agent,
                &candidates,
                split,
                &mut chosen,
                edge_cost,
                dist_lb,
                &mut best_cost,
                &mut best_set,
                &mut evaluated,
            );
            (best_cost, best_set, evaluated)
        })
        .collect();

    let mut best_cost = current;
    let mut best_set: BTreeSet<NodeId> = profile.strategy(agent).clone();
    let mut evaluated = 0usize;
    for (c, s, e) in results {
        evaluated += e;
        if strictly_less(c, best_cost) {
            best_cost = c;
            best_set = s;
        }
    }
    BestResponse {
        strategy: best_set,
        cost: best_cost,
        current_cost: current,
        evaluated,
    }
}

/// The best single greedy move (add / delete / swap) of `agent`, if any
/// strictly improving one exists. Returns the move together with the cost
/// it achieves.
pub fn best_greedy_move(game: &Game, profile: &Profile, agent: NodeId) -> Option<(Move, f64)> {
    best_move_among(game, profile, agent, &Move::greedy_moves(profile, agent))
}

/// The best single edge *addition* of `agent`, if an improving one exists
/// (the move space of Add-only Equilibria).
pub fn best_add_move(game: &Game, profile: &Profile, agent: NodeId) -> Option<(Move, f64)> {
    best_move_among(game, profile, agent, &Move::add_moves(profile, agent))
}

/// Evaluates a set of moves and returns the best strictly-improving one.
pub fn best_move_among(
    game: &Game,
    profile: &Profile,
    agent: NodeId,
    moves: &[Move],
) -> Option<(Move, f64)> {
    let network = profile.build_network(game);
    let current = agent_cost_in(game, profile, &network, agent).total();
    let base = base_graph_without(game, profile, agent);
    let own = profile.strategy(agent);
    let mut best: Option<(Move, f64)> = None;
    for m in moves {
        let cand = m.apply(agent, own);
        let c = candidate_cost(game, &base, agent, &cand).total();
        let incumbent = best.as_ref().map_or(current, |&(_, b)| b);
        if strictly_less(c, incumbent) {
            best = Some((m.clone(), c));
        }
    }
    best
}

/// Prices an explicit move without applying it.
pub fn move_cost(game: &Game, profile: &Profile, agent: NodeId, m: &Move) -> CostBreakdown {
    let base = base_graph_without(game, profile, agent);
    let cand = m.apply(agent, profile.strategy(agent));
    candidate_cost(game, &base, agent, &cand)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_graph::SymMatrix;

    fn unit_game(n: usize, alpha: f64) -> Game {
        Game::new(SymMatrix::filled(n, 1.0), alpha)
    }

    #[test]
    fn isolated_agent_buys_exactly_one_edge_into_a_star() {
        // Star on 4 nodes around 0 (owned by 0); agent 3 removed from the
        // star and isolated. Its best response for α = 1 is to buy the
        // cheapest connection, via the center (all weights 1, so any single
        // edge to the center is optimal: dist 1 + 2 + 2 vs edge 1).
        let game = unit_game(4, 5.0);
        let mut p = Profile::empty(4);
        p.buy(0, 1);
        p.buy(0, 2);
        let br = exact_best_response(&game, &p, 3);
        assert!(br.improves()); // currently disconnected, cost ∞
        assert_eq!(br.strategy.len(), 1);
        assert!(br.strategy.contains(&0));
        // α·1 + (1 + 2 + 2) = 10.
        assert_eq!(br.cost, 10.0);
    }

    #[test]
    fn low_alpha_buys_everything() {
        // For tiny α the best response is to connect directly to everyone.
        let game = unit_game(5, 0.01);
        let p = Profile::star(5, 0);
        let br = exact_best_response(&game, &p, 2);
        assert_eq!(br.strategy.len(), 3, "buy direct edges to all non-neighbors");
        assert!(br.improves());
    }

    #[test]
    fn high_alpha_keeps_nothing_extra() {
        // Star center 0 owns all edges; leaf 1 should buy nothing at high α.
        let game = unit_game(5, 100.0);
        let p = Profile::star(5, 0);
        let br = exact_best_response(&game, &p, 1);
        assert!(!br.improves());
        assert!(br.strategy.is_empty());
    }

    #[test]
    fn exact_br_at_least_as_good_as_greedy() {
        let host = gncg_metrics::arbitrary::random_metric(8, 1.0, 4.0, 17);
        let game = Game::new(host, 1.5);
        let mut p = Profile::star(8, 0);
        p.buy(3, 4);
        for agent in 0..8 {
            let br = exact_best_response(&game, &p, agent);
            if let Some((_, g)) = best_greedy_move(&game, &p, agent) {
                assert!(br.cost <= g + 1e-9, "agent {agent}: BR {} > greedy {g}", br.cost);
            }
            assert!(br.cost <= br.current_cost + 1e-9);
        }
    }

    #[test]
    fn best_greedy_move_finds_add() {
        // Path 0-1-2-3 with unit weights, α = 0.1: endpoints want shortcuts.
        let game = unit_game(4, 0.1);
        let p = Profile::from_owned_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let (m, c) = best_greedy_move(&game, &p, 0).expect("improving move exists");
        match m {
            Move::Add(v) => assert!(v == 2 || v == 3),
            other => panic!("expected Add, got {other:?}"),
        }
        assert!(c < agent_cost_in(&game, &p, &p.build_network(&game), 0).total());
    }

    #[test]
    fn best_greedy_move_finds_delete() {
        // Triangle where 0 owns a redundant heavy edge.
        let mut w = SymMatrix::filled(3, 1.0);
        w.set(0, 2, 1.5);
        let game = Game::new(w, 10.0);
        let p = Profile::from_owned_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let (m, _) = best_greedy_move(&game, &p, 0).expect("delete should improve");
        assert_eq!(m, Move::Delete(2));
    }

    #[test]
    fn move_cost_matches_application() {
        let game = unit_game(5, 2.0);
        let p = Profile::star(5, 0);
        let m = Move::Add(2);
        let predicted = move_cost(&game, &p, 1, &m).total();
        let mut p2 = p.clone();
        p2.buy(1, 2);
        let real = crate::cost::agent_cost(&game, &p2, 1).total();
        assert!(gncg_graph::approx_eq(predicted, real));
    }

    #[test]
    fn parallel_br_matches_sequential_cost() {
        for seed in 0..3u64 {
            let host = gncg_metrics::arbitrary::random_metric(9, 1.0, 4.0, seed);
            let game = Game::new(host, 1.2);
            let mut p = Profile::star(9, 0);
            p.buy(2, 5);
            p.buy(7, 3);
            for agent in 0..9u32 {
                let seq = exact_best_response(&game, &p, agent);
                let par = exact_best_response_parallel(&game, &p, agent);
                assert!(
                    gncg_graph::approx_eq(seq.cost, par.cost),
                    "agent {agent} seed {seed}: {} vs {}",
                    seq.cost,
                    par.cost
                );
                assert!(gncg_graph::approx_eq(seq.current_cost, par.current_cost));
                // The parallel strategy must achieve its reported cost.
                let mut p2 = p.clone();
                p2.set_strategy(agent, par.strategy.clone());
                let real = crate::cost::agent_cost(&game, &p2, agent).total();
                assert!(gncg_graph::approx_eq(real, par.cost));
            }
        }
    }

    #[test]
    fn parallel_br_tiny_instance_falls_back() {
        let game = unit_game(4, 1.0);
        let p = Profile::star(4, 0);
        let par = exact_best_response_parallel(&game, &p, 1);
        let seq = exact_best_response(&game, &p, 1);
        assert!(gncg_graph::approx_eq(par.cost, seq.cost));
    }

    #[test]
    fn br_on_weighted_path_prefers_cheap_edges() {
        // Host: metric from a path with increasing weights. Agent n-1
        // disconnected; best single edge should weigh cheapness vs centrality.
        let t = gncg_graph::WeightedTree::path(&[1.0, 1.0, 10.0]);
        let host = t.metric_closure();
        let game = Game::new(host, 1.0);
        let mut p = Profile::empty(4);
        p.buy(0, 1);
        p.buy(1, 2);
        let br = exact_best_response(&game, &p, 3);
        // Buying (3,2) costs α·10 + dist (10 + 11 + 12) — best option is
        // still a connection; exact solver must find the cheapest total.
        assert!(br.cost.is_finite());
        assert!(!br.strategy.is_empty());
        // Verify optimality against brute force over all 7 nonempty subsets.
        let base = base_graph_without(&game, &p, 3);
        let mut brute = f64::INFINITY;
        for mask in 1u32..8 {
            let set: BTreeSet<NodeId> =
                (0..3).filter(|&i| mask & (1 << i) != 0).map(|i| i as NodeId).collect();
            let c = candidate_cost(&game, &base, 3, &set).total();
            brute = brute.min(c);
        }
        assert!(gncg_graph::approx_eq(br.cost, brute));
    }
}
