//! Equilibrium concepts and their certification.
//!
//! The paper's hierarchy (§1.1): every NE is a GE, every GE is an AE.
//!
//! * **NE** — no agent has *any* improving strategy change. Certified with
//!   the exact best-response solver (exponential; parallelized over agents).
//! * **GE** (Greedy Equilibrium) — no agent improves by a single add,
//!   delete or swap.
//! * **AE** (Add-only Equilibrium) — no agent improves by a single add.
//! * **β-NE / β-GE** — no deviation (in the respective move space) drops an
//!   agent's cost below `cost(u)/β`.

use rayon::prelude::*;

use gncg_graph::{strictly_less, NodeId};

use crate::cost::{agent_cost_in, base_graph_without, candidate_cost};
use crate::response::{best_add_move, best_greedy_move, exact_best_response};
use crate::{Game, Move, Profile};

/// Whether `profile` is an Add-only Equilibrium.
pub fn is_add_only_equilibrium(game: &Game, profile: &Profile) -> bool {
    (0..game.n() as NodeId)
        .into_par_iter()
        .all(|u| best_add_move(game, profile, u).is_none())
}

/// Whether `profile` is a Greedy Equilibrium.
pub fn is_greedy_equilibrium(game: &Game, profile: &Profile) -> bool {
    (0..game.n() as NodeId)
        .into_par_iter()
        .all(|u| best_greedy_move(game, profile, u).is_none())
}

/// Whether `profile` is a *Swap Equilibrium*: no agent improves by
/// swapping one owned edge for another (deletions and additions excluded).
///
/// Swap stability is the concept of the "basic network creation games"
/// line (Alon et al., and Mihalák & Schlegel's asymmetric swap
/// equilibrium, both discussed in the paper's related work §1.2); every GE
/// is in particular swap-stable, which makes this a cheap necessary
/// condition and a useful diagnostic for *why* a profile fails GE.
pub fn is_swap_equilibrium(game: &Game, profile: &Profile) -> bool {
    (0..game.n() as NodeId).into_par_iter().all(|u| {
        let moves: Vec<Move> = Move::greedy_moves(profile, u)
            .into_iter()
            .filter(|m| matches!(m, Move::Swap(..)))
            .collect();
        crate::response::best_move_among(game, profile, u, &moves).is_none()
    })
}

/// Whether `profile` is a pure Nash Equilibrium, certified by exact
/// best-response search for every agent (parallelized). Exponential in the
/// worst case — intended for the experiment sizes (n ≲ 20) and structured
/// constructions.
pub fn is_nash_equilibrium(game: &Game, profile: &Profile) -> bool {
    (0..game.n() as NodeId)
        .into_par_iter()
        .all(|u| !exact_best_response(game, profile, u).improves())
}

/// The worst NE approximation factor over agents:
/// `max_u cost(u) / bestresponse_cost(u)` (`1.0` means exact NE).
///
/// A profile is a β-NE exactly when this factor is ≤ β.
pub fn nash_approximation_factor(game: &Game, profile: &Profile) -> f64 {
    (0..game.n() as NodeId)
        .into_par_iter()
        .map(|u| {
            let br = exact_best_response(game, profile, u);
            ratio(br.current_cost, br.cost)
        })
        .reduce(|| 1.0, f64::max)
}

/// The worst *greedy* approximation factor over agents:
/// `max_u cost(u) / best_single_move_cost(u)` (`1.0` means exact GE).
///
/// A profile is a β-GE exactly when this factor is ≤ β. Theorem 2 of the
/// paper shows every AE in the M–GNCG has factor ≤ α + 1.
pub fn greedy_approximation_factor(game: &Game, profile: &Profile) -> f64 {
    (0..game.n() as NodeId)
        .into_par_iter()
        .map(|u| {
            let network = profile.build_network(game);
            let current = agent_cost_in(game, profile, &network, u).total();
            let base = base_graph_without(game, profile, u);
            let own = profile.strategy(u);
            let mut best = current;
            for m in Move::greedy_moves(profile, u) {
                let cand = m.apply(u, own);
                let c = candidate_cost(game, &base, u, &cand).total();
                if c < best {
                    best = c;
                }
            }
            ratio(current, best)
        })
        .reduce(|| 1.0, f64::max)
}

/// Whether `profile` is a β-approximate NE.
pub fn is_beta_nash(game: &Game, profile: &Profile, beta: f64) -> bool {
    nash_approximation_factor(game, profile) <= beta + gncg_graph::EPS
}

/// Which agents currently have an improving greedy move (diagnostic).
pub fn unstable_agents_greedy(game: &Game, profile: &Profile) -> Vec<NodeId> {
    (0..game.n() as NodeId)
        .filter(|&u| best_greedy_move(game, profile, u).is_some())
        .collect()
}

fn ratio(current: f64, best: f64) -> f64 {
    if strictly_less(best, current) {
        if best <= 0.0 {
            // Positive current cost against zero-cost deviation: unbounded.
            if current > 0.0 {
                f64::INFINITY
            } else {
                1.0
            }
        } else {
            current / best
        }
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_graph::SymMatrix;

    fn unit_game(n: usize, alpha: f64) -> Game {
        Game::new(SymMatrix::filled(n, 1.0), alpha)
    }

    #[test]
    fn star_is_ne_for_high_alpha_unit_metric() {
        // Classic NCG fact: stars are NE for α ≥ 1 (here α = 2).
        let game = unit_game(6, 2.0);
        let p = Profile::star(6, 0);
        assert!(is_nash_equilibrium(&game, &p));
        assert!(is_greedy_equilibrium(&game, &p));
        assert!(is_add_only_equilibrium(&game, &p));
        assert_eq!(nash_approximation_factor(&game, &p), 1.0);
    }

    #[test]
    fn star_not_ne_for_low_alpha_unit_metric() {
        // α < 1: leaves profit from buying 1-edges (distance 2 → 1 costs α).
        let game = unit_game(6, 0.5);
        let p = Profile::star(6, 0);
        assert!(!is_add_only_equilibrium(&game, &p));
        assert!(!is_greedy_equilibrium(&game, &p));
        assert!(!is_nash_equilibrium(&game, &p));
        assert!(nash_approximation_factor(&game, &p) > 1.0);
    }

    #[test]
    fn hierarchy_ne_implies_ge_implies_ae() {
        // Sweep a few instances; whenever NE holds, GE and AE must hold.
        for seed in 0..4u64 {
            let host = gncg_metrics::arbitrary::random_metric(6, 1.0, 3.0, seed);
            let game = Game::new(host, 2.0);
            for center in 0..3 {
                let p = Profile::star(6, center);
                let ne = is_nash_equilibrium(&game, &p);
                let ge = is_greedy_equilibrium(&game, &p);
                let ae = is_add_only_equilibrium(&game, &p);
                if ne {
                    assert!(ge, "NE must be GE (seed {seed}, center {center})");
                }
                if ge {
                    assert!(ae, "GE must be AE (seed {seed}, center {center})");
                }
            }
        }
    }

    #[test]
    fn disconnected_two_agents_are_unstable() {
        // On n = 2 a single add restores connectivity and is improving.
        let game = unit_game(2, 1.0);
        let p = Profile::empty(2);
        assert!(!is_add_only_equilibrium(&game, &p));
        let unstable = unstable_agents_greedy(&game, &p);
        assert_eq!(unstable.len(), 2);
    }

    #[test]
    fn empty_profile_on_many_agents_is_vacuous_ae() {
        // With n ≥ 3 a *single* added edge cannot restore connectivity, so
        // the (infinite-cost) empty profile is vacuously an Add-only
        // Equilibrium — but not a Nash Equilibrium, since a full strategy
        // replacement (buy everything) yields finite cost.
        let game = unit_game(4, 1.0);
        let p = Profile::empty(4);
        assert!(is_add_only_equilibrium(&game, &p));
        assert!(!is_nash_equilibrium(&game, &p));
    }

    #[test]
    fn complete_graph_equilibrium_for_tiny_alpha() {
        // α < smallest distance saving: the complete graph (each edge owned
        // once) is NE because deleting any edge raises distance by ≥ 1 > α·1
        // and nothing can be added.
        let game = unit_game(4, 0.5);
        let mut p = Profile::empty(4);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                p.buy(u, v);
            }
        }
        assert!(is_nash_equilibrium(&game, &p));
    }

    #[test]
    fn beta_nash_factors() {
        let game = unit_game(6, 0.5);
        let p = Profile::star(6, 0);
        let f = nash_approximation_factor(&game, &p);
        assert!(f > 1.0);
        assert!(is_beta_nash(&game, &p, f + 0.01));
        assert!(!is_beta_nash(&game, &p, (f - 0.01).max(1.0)));
    }

    #[test]
    fn swap_equilibrium_is_implied_by_ge() {
        // GE ⇒ swap-stable on certified profiles.
        let game = unit_game(6, 2.0);
        let p = Profile::star(6, 0);
        assert!(is_greedy_equilibrium(&game, &p));
        assert!(is_swap_equilibrium(&game, &p));
    }

    #[test]
    fn swap_instability_detected() {
        // Agent 0 owns a heavy edge with a strictly cheaper swap target
        // that preserves all its distances.
        let mut w = SymMatrix::filled(4, 1.0);
        w.set(0, 3, 5.0); // heavy
        let game = Game::new(w, 10.0);
        // 0 owns (0,3); path 3-2-1-0 exists through unit edges.
        let p = Profile::from_owned_edges(4, &[(0, 3), (1, 0), (2, 1), (3, 2)]);
        assert!(!is_swap_equilibrium(&game, &p));
    }

    #[test]
    fn greedy_factor_at_most_nash_factor() {
        // The greedy deviation space is a subset of the full one, so the
        // greedy improvement factor can't exceed the Nash improvement factor.
        let host = gncg_metrics::arbitrary::random_metric(7, 1.0, 4.0, 5);
        let game = Game::new(host, 1.0);
        let p = Profile::star(7, 2);
        let gf = greedy_approximation_factor(&game, &p);
        let nf = nash_approximation_factor(&game, &p);
        assert!(gf <= nf + 1e-9, "greedy {gf} vs nash {nf}");
    }
}
