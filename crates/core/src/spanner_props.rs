//! Lemma 1 and Lemma 2: spanner properties of equilibria and optima.
//!
//! * Lemma 1 — for any host graph, any Add-only Equilibrium is an
//!   `(α+1)`-spanner of `H`.
//! * Lemma 2 — the social optimum is an `(α/2+1)`-spanner of any connected
//!   host graph.
//!
//! These are *verification* utilities used by experiments E01/E02 and by
//! the PoA upper-bound machinery.

use gncg_graph::spanner::{is_k_spanner, max_stretch};
use gncg_graph::AdjacencyList;

use crate::{Game, Profile};

/// Lemma 1 bound: `α + 1`.
pub fn lemma1_bound(alpha: f64) -> f64 {
    alpha + 1.0
}

/// Lemma 2 bound: `α/2 + 1`.
pub fn lemma2_bound(alpha: f64) -> f64 {
    alpha / 2.0 + 1.0
}

/// Measures the stretch of the built network of `profile` w.r.t. the host
/// distances of `game`.
pub fn profile_stretch(game: &Game, profile: &Profile) -> f64 {
    let g = profile.build_network(game);
    max_stretch(&g, game.host_distances())
}

/// Checks the Lemma 1 property: the built network is an `(α+1)`-spanner.
/// (Holds whenever `profile` is an AE; may fail for arbitrary profiles.)
pub fn satisfies_lemma1(game: &Game, profile: &Profile) -> bool {
    let g = profile.build_network(game);
    is_k_spanner(&g, game.host_distances(), lemma1_bound(game.alpha()))
}

/// Checks the Lemma 2 property on an arbitrary network (intended: the
/// social optimum): it is an `(α/2+1)`-spanner of the host.
pub fn satisfies_lemma2(game: &Game, network: &AdjacencyList) -> bool {
    is_k_spanner(network, game.host_distances(), lemma2_bound(game.alpha()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_graph::SymMatrix;

    #[test]
    fn bounds() {
        assert_eq!(lemma1_bound(3.0), 4.0);
        assert_eq!(lemma2_bound(3.0), 2.5);
    }

    #[test]
    fn star_satisfies_lemma1_unit_metric() {
        // Star at α = 2 is an NE hence AE; its stretch is 2 ≤ α + 1 = 3.
        let game = Game::new(SymMatrix::filled(6, 1.0), 2.0);
        let p = Profile::star(6, 0);
        assert!(satisfies_lemma1(&game, &p));
        let s = profile_stretch(&game, &p);
        assert!(gncg_graph::approx_eq(s, 2.0));
    }

    #[test]
    fn disconnected_profile_fails_lemma1() {
        let game = Game::new(SymMatrix::filled(4, 1.0), 1.0);
        let p = Profile::empty(4);
        assert!(!satisfies_lemma1(&game, &p));
        assert_eq!(profile_stretch(&game, &p), f64::INFINITY);
    }

    #[test]
    fn lemma1_can_fail_for_non_ae_profiles() {
        // A path on the unit metric has stretch n-1; for small α this
        // exceeds α+1 — and indeed a path is not an AE there.
        let game = Game::new(SymMatrix::filled(6, 1.0), 0.5);
        let p = Profile::from_owned_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        assert!(!satisfies_lemma1(&game, &p));
        assert!(!crate::equilibrium::is_add_only_equilibrium(&game, &p));
    }

    #[test]
    fn complete_network_satisfies_lemma2() {
        let game = Game::new(SymMatrix::filled(5, 1.0), 1.0);
        let g = gncg_graph::AdjacencyList::complete_from_matrix(game.host());
        assert!(satisfies_lemma2(&game, &g));
    }
}
