//! Game instances: a complete weighted host graph plus the price
//! parameter `α`.

use gncg_graph::apsp::DistanceMatrix;
use gncg_graph::{NodeId, SymMatrix};

/// A GNCG instance `(H, α)`.
///
/// `H` is given as its symmetric weight matrix; `α > 0` scales the price of
/// an edge relative to its weight: buying `(u, v)` costs `α·w(u, v)`.
#[derive(Clone, Debug)]
pub struct Game {
    host: SymMatrix,
    alpha: f64,
    /// Shortest-path distances *in the host* (the metric closure of `H`).
    /// For metric hosts these equal the weights; for non-metric hosts they
    /// may be smaller. Used as a distance lower bound in best-response
    /// pruning and for Lemma 1/2 spanner checks.
    host_dist: DistanceMatrix,
}

impl Game {
    /// Creates an instance.
    ///
    /// # Panics
    /// Panics if `α <= 0` or any weight is negative.
    pub fn new(host: SymMatrix, alpha: f64) -> Self {
        assert!(alpha > 0.0, "α must be positive");
        assert!(host.is_nonnegative(), "edge weights must be non-negative");
        let host_dist = gncg_graph::apsp::floyd_warshall(&host);
        Game {
            host,
            alpha,
            host_dist,
        }
    }

    /// Number of agents.
    #[inline]
    pub fn n(&self) -> usize {
        self.host.n()
    }

    /// The price parameter `α`.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The host weight `w(u, v)`.
    #[inline]
    pub fn w(&self, u: NodeId, v: NodeId) -> f64 {
        self.host.get(u, v)
    }

    /// The host weight matrix.
    #[inline]
    pub fn host(&self) -> &SymMatrix {
        &self.host
    }

    /// Shortest-path distances in the host graph (`d_H`).
    #[inline]
    pub fn host_distances(&self) -> &DistanceMatrix {
        &self.host_dist
    }

    /// Whether the host satisfies the triangle inequality (`M–GNCG`).
    pub fn is_metric(&self) -> bool {
        self.host.satisfies_triangle_inequality()
    }

    /// The same host with a different `α` (cheap: reuses the closure).
    pub fn with_alpha(&self, alpha: f64) -> Game {
        assert!(alpha > 0.0, "α must be positive");
        Game {
            host: self.host.clone(),
            alpha,
            host_dist: self.host_dist.clone(),
        }
    }

    /// Price of buying edge `(u, v)`: `α·w(u, v)`.
    #[inline]
    pub fn edge_price(&self, u: NodeId, v: NodeId) -> f64 {
        self.alpha * self.host.get(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_game(n: usize, alpha: f64) -> Game {
        Game::new(SymMatrix::filled(n, 1.0), alpha)
    }

    #[test]
    fn construction_and_accessors() {
        let g = unit_game(5, 2.0);
        assert_eq!(g.n(), 5);
        assert_eq!(g.alpha(), 2.0);
        assert_eq!(g.w(0, 1), 1.0);
        assert_eq!(g.edge_price(0, 1), 2.0);
        assert!(g.is_metric());
    }

    #[test]
    #[should_panic]
    fn zero_alpha_rejected() {
        unit_game(3, 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_weights_rejected() {
        let mut w = SymMatrix::filled(3, 1.0);
        w.set(0, 1, -1.0);
        Game::new(w, 1.0);
    }

    #[test]
    fn host_distances_shortcut_nonmetric_edges() {
        let mut w = SymMatrix::filled(3, 1.0);
        w.set(0, 2, 10.0);
        let g = Game::new(w, 1.0);
        assert!(!g.is_metric());
        assert_eq!(g.host_distances().get(0, 2), 2.0);
        assert_eq!(g.w(0, 2), 10.0);
    }

    #[test]
    fn with_alpha_keeps_host() {
        let g = unit_game(4, 1.0);
        let g2 = g.with_alpha(5.0);
        assert_eq!(g2.alpha(), 5.0);
        assert_eq!(g2.n(), 4);
        assert_eq!(g2.edge_price(1, 2), 5.0);
    }
}
