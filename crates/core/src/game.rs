//! Game instances: a complete weighted host graph plus the price
//! parameter `α`.

use std::sync::OnceLock;

use gncg_graph::apsp::DistanceMatrix;
use gncg_graph::{NodeId, SymMatrix};

/// A GNCG instance `(H, α)`.
///
/// `H` is given as its symmetric weight matrix; `α > 0` scales the price of
/// an edge relative to its weight: buying `(u, v)` costs `α·w(u, v)`.
#[derive(Debug)]
pub struct Game {
    host: SymMatrix,
    alpha: f64,
    /// Shortest-path distances *in the host* (the metric closure of `H`),
    /// computed **lazily** on first [`Game::host_distances`] call: the
    /// closure is Θ(n³) Floyd–Warshall, which at n = 4096 would dominate
    /// construction by orders of magnitude — and the dynamics hot path
    /// (speculative scans, warm repairs, social cost) never touches it.
    /// Only the reference best response's distance lower bound and the
    /// Lemma 1/2 spanner/PoA checks force it.
    host_dist: OnceLock<DistanceMatrix>,
}

// Manual impl: `OnceLock` derives would demand `DistanceMatrix: Clone`
// via the lock; cloning copies any already-computed closure so a clone
// never re-pays Floyd–Warshall.
impl Clone for Game {
    fn clone(&self) -> Self {
        let host_dist = OnceLock::new();
        if let Some(d) = self.host_dist.get() {
            let _ = host_dist.set(d.clone());
        }
        Game {
            host: self.host.clone(),
            alpha: self.alpha,
            host_dist,
        }
    }
}

impl Game {
    /// Creates an instance.
    ///
    /// # Panics
    /// Panics if `α <= 0` or any weight is negative.
    pub fn new(host: SymMatrix, alpha: f64) -> Self {
        assert!(alpha > 0.0, "α must be positive");
        assert!(host.is_nonnegative(), "edge weights must be non-negative");
        Game {
            host,
            alpha,
            host_dist: OnceLock::new(),
        }
    }

    /// Number of agents.
    #[inline]
    pub fn n(&self) -> usize {
        self.host.n()
    }

    /// The price parameter `α`.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The host weight `w(u, v)`.
    #[inline]
    pub fn w(&self, u: NodeId, v: NodeId) -> f64 {
        self.host.get(u, v)
    }

    /// The host weight matrix.
    #[inline]
    pub fn host(&self) -> &SymMatrix {
        &self.host
    }

    /// Shortest-path distances in the host graph (`d_H`), computing the
    /// Θ(n³) metric closure on first use (thread-safe; at most once per
    /// instance).
    pub fn host_distances(&self) -> &DistanceMatrix {
        self.host_dist
            .get_or_init(|| gncg_graph::apsp::floyd_warshall(&self.host))
    }

    /// Whether the host satisfies the triangle inequality (`M–GNCG`).
    pub fn is_metric(&self) -> bool {
        self.host.satisfies_triangle_inequality()
    }

    /// The same host with a different `α` (cheap: any already-computed
    /// closure is carried over, never recomputed).
    pub fn with_alpha(&self, alpha: f64) -> Game {
        assert!(alpha > 0.0, "α must be positive");
        let mut g = self.clone();
        g.alpha = alpha;
        g
    }

    /// Price of buying edge `(u, v)`: `α·w(u, v)`.
    #[inline]
    pub fn edge_price(&self, u: NodeId, v: NodeId) -> f64 {
        self.alpha * self.host.get(u, v)
    }

    /// The host's weight class `(w_min, w_max)` over off-diagonal
    /// entries — the hint the bucket-queue SSSP engines accept
    /// (`DijkstraScratch::set_weight_class` and friends in
    /// `gncg_graph::csr`). Every edge a profile can buy carries a host
    /// weight, so every built network's weights lie in this class.
    ///
    /// `None` when the class cannot drive a bucket ring: a non-positive
    /// minimum or no finite maximum (e.g. a `{1, ∞}` host whose only
    /// finite weight class is degenerate is still returned — infinite
    /// edges never win a relaxation, so they cannot perturb the scan).
    pub fn weight_class(&self) -> Option<(f64, f64)> {
        let (lo, hi) = (self.host.min_weight(), self.host.max_weight());
        (lo > 0.0 && hi.is_finite() && hi >= lo).then_some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_game(n: usize, alpha: f64) -> Game {
        Game::new(SymMatrix::filled(n, 1.0), alpha)
    }

    #[test]
    fn construction_and_accessors() {
        let g = unit_game(5, 2.0);
        assert_eq!(g.n(), 5);
        assert_eq!(g.alpha(), 2.0);
        assert_eq!(g.w(0, 1), 1.0);
        assert_eq!(g.edge_price(0, 1), 2.0);
        assert!(g.is_metric());
    }

    #[test]
    #[should_panic]
    fn zero_alpha_rejected() {
        unit_game(3, 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_weights_rejected() {
        let mut w = SymMatrix::filled(3, 1.0);
        w.set(0, 1, -1.0);
        Game::new(w, 1.0);
    }

    #[test]
    fn host_distances_shortcut_nonmetric_edges() {
        let mut w = SymMatrix::filled(3, 1.0);
        w.set(0, 2, 10.0);
        let g = Game::new(w, 1.0);
        assert!(!g.is_metric());
        assert_eq!(g.host_distances().get(0, 2), 2.0);
        assert_eq!(g.w(0, 2), 10.0);
    }

    #[test]
    fn weight_class_reflects_host_extremes() {
        let g = unit_game(5, 1.0);
        assert_eq!(g.weight_class(), Some((1.0, 1.0)));
        let mut w = SymMatrix::filled(4, 2.0);
        w.set(0, 1, 0.5);
        w.set(2, 3, 8.0);
        assert_eq!(Game::new(w, 1.0).weight_class(), Some((0.5, 8.0)));
        // A zero weight kills the class: buckets need w_min > 0.
        let mut z = SymMatrix::filled(3, 1.0);
        z.set(0, 2, 0.0);
        assert_eq!(Game::new(z, 1.0).weight_class(), None);
        // Infinite entries are ignored by the finite maximum.
        let mut inf = SymMatrix::filled(3, 1.0);
        inf.set(1, 2, f64::INFINITY);
        assert_eq!(Game::new(inf, 1.0).weight_class(), Some((1.0, 1.0)));
    }

    #[test]
    fn host_closure_is_lazy_and_survives_clone() {
        let mut w = SymMatrix::filled(4, 1.0);
        w.set(0, 3, 9.0);
        let g = Game::new(w, 1.0);
        // Nothing computed yet; a clone of an unforced game is unforced.
        assert!(g.host_dist.get().is_none());
        assert!(g.clone().host_dist.get().is_none());
        assert_eq!(g.host_distances().get(0, 3), 2.0);
        // A clone of a forced game carries the closure over.
        let c = g.clone();
        assert!(c.host_dist.get().is_some());
        assert_eq!(c.host_distances().get(0, 3), 2.0);
        let a = g.with_alpha(3.0);
        assert_eq!(a.host_distances().get(0, 3), 2.0);
    }

    #[test]
    fn with_alpha_keeps_host() {
        let g = unit_game(4, 1.0);
        let g2 = g.with_alpha(5.0);
        assert_eq!(g2.alpha(), 5.0);
        assert_eq!(g2.n(), 4);
        assert_eq!(g2.edge_price(1, 2), 5.0);
    }
}
