//! Equilibrium analysis: per-agent cost decomposition and fairness
//! statistics.
//!
//! The model's story (§1.3) is about who pays for shared infrastructure:
//! in an equilibrium some agents own many edges (hubs) while others free
//! ride on connectivity bought by their neighbors. This module quantifies
//! that split for any profile.

use gncg_graph::NodeId;

use crate::cost::{agent_cost_in, CostBreakdown};
use crate::{Game, Profile};

/// Per-agent cost record.
#[derive(Clone, Debug)]
pub struct AgentReport {
    /// The agent.
    pub agent: NodeId,
    /// Its cost split.
    pub cost: CostBreakdown,
    /// Edges bought by the agent.
    pub edges_bought: usize,
    /// Degree in the built network (bought + received).
    pub degree: usize,
}

/// Profile-level analysis.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// Per-agent rows, indexed by agent id.
    pub agents: Vec<AgentReport>,
    /// Social cost (sum of agent totals).
    pub social_cost: f64,
    /// Total edge expenditure across agents.
    pub total_edge_cost: f64,
    /// Total distance cost across agents.
    pub total_distance_cost: f64,
    /// Count of agents buying no edges at all (free riders).
    pub free_riders: usize,
    /// Max/min agent total cost ratio (∞ when some agent pays 0 — cannot
    /// happen on connected profiles with α > 0 and positive weights).
    pub cost_spread: f64,
}

/// Analyzes a profile.
pub fn analyze(game: &Game, profile: &Profile) -> ProfileReport {
    let network = profile.build_network(game);
    let mut agents = Vec::with_capacity(game.n());
    for u in 0..game.n() as NodeId {
        let cost = agent_cost_in(game, profile, &network, u);
        agents.push(AgentReport {
            agent: u,
            cost,
            edges_bought: profile.strategy(u).len(),
            degree: network.degree(u),
        });
    }
    let total_edge_cost: f64 = agents.iter().map(|a| a.cost.edge_cost).sum();
    let total_distance_cost: f64 = agents.iter().map(|a| a.cost.distance_cost).sum();
    let free_riders = agents.iter().filter(|a| a.edges_bought == 0).count();
    let max_cost = agents
        .iter()
        .map(|a| a.cost.total())
        .fold(f64::NEG_INFINITY, f64::max);
    let min_cost = agents
        .iter()
        .map(|a| a.cost.total())
        .fold(f64::INFINITY, f64::min);
    let cost_spread = if min_cost > 0.0 {
        max_cost / min_cost
    } else {
        f64::INFINITY
    };
    ProfileReport {
        social_cost: total_edge_cost + total_distance_cost,
        total_edge_cost,
        total_distance_cost,
        free_riders,
        cost_spread,
        agents,
    }
}

impl ProfileReport {
    /// The agent with the largest total cost.
    pub fn worst_off(&self) -> &AgentReport {
        self.agents
            .iter()
            .max_by(|a, b| a.cost.total().total_cmp(&b.cost.total()))
            .expect("non-empty profile")
    }

    /// The agent buying the most edges (the "hub" builder).
    pub fn biggest_builder(&self) -> &AgentReport {
        self.agents
            .iter()
            .max_by_key(|a| a.edges_bought)
            .expect("non-empty profile")
    }

    /// The fraction of the social cost carried by edge expenditure.
    pub fn edge_cost_share(&self) -> f64 {
        if self.social_cost == 0.0 {
            0.0
        } else {
            self.total_edge_cost / self.social_cost
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_graph::SymMatrix;

    fn star_report(alpha: f64) -> ProfileReport {
        let game = Game::new(SymMatrix::filled(5, 1.0), alpha);
        analyze(&game, &Profile::star(5, 0))
    }

    #[test]
    fn star_decomposition() {
        let r = star_report(2.0);
        // Center buys 4 edges, leaves none.
        assert_eq!(r.agents[0].edges_bought, 4);
        assert_eq!(r.free_riders, 4);
        assert_eq!(r.biggest_builder().agent, 0);
        // Social cost consistency.
        let direct = crate::cost::social_cost(&game_for(), &Profile::star(5, 0));
        assert!(gncg_graph::approx_eq(r.social_cost, direct));
        // Edge cost = α·4 = 8; distance = 4 + 4·7 = 32.
        assert!(gncg_graph::approx_eq(r.total_edge_cost, 8.0));
        assert!(gncg_graph::approx_eq(
            r.total_distance_cost,
            4.0 + 4.0 * 7.0
        ));
    }

    fn game_for() -> Game {
        Game::new(SymMatrix::filled(5, 1.0), 2.0)
    }

    #[test]
    fn worst_off_agent_in_star_is_center_at_high_alpha() {
        // At α = 2: center cost 8 + 4 = 12; leaves 0 + 7 = 7.
        let r = star_report(2.0);
        assert_eq!(r.worst_off().agent, 0);
        assert!(gncg_graph::approx_eq(r.cost_spread, 12.0 / 7.0));
    }

    #[test]
    fn edge_cost_share_monotone_in_alpha() {
        let lo = star_report(0.5).edge_cost_share();
        let hi = star_report(5.0).edge_cost_share();
        assert!(lo < hi);
        assert!((0.0..=1.0).contains(&lo));
        assert!((0.0..=1.0).contains(&hi));
    }

    #[test]
    fn disconnected_profile_reports_infinite_costs() {
        let game = Game::new(SymMatrix::filled(3, 1.0), 1.0);
        let r = analyze(&game, &Profile::empty(3));
        assert!(r.social_cost.is_infinite());
        assert_eq!(r.free_riders, 3);
    }
}
