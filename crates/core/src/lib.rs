//! # gncg-core
//!
//! The Generalized Network Creation Game (GNCG) of Bilò, Friedrich,
//! Lenzner and Melnichenko (SPAA 2019).
//!
//! A [`Game`] couples a complete weighted host graph `H` with the edge-price
//! parameter `α > 0`. A [`Profile`] assigns each agent `u` a strategy
//! `S_u ⊆ V \ {u}` — the set of nodes towards which `u` buys an edge at
//! price `α·w(u, v)`. The profile induces the built network `G(s)`
//! ([`Profile::build_network`]), and
//!
//! ```text
//! cost(u, G(s)) = α·w(u, S_u) + Σ_v d_G(s)(u, v)
//! ```
//!
//! Module map:
//! * [`game`] — the instance type (`H`, `α`) and model-variant helpers,
//! * [`profile`] — strategy profiles and edge ownership,
//! * [`cost`] — agent and social cost, incremental candidate evaluation,
//! * [`moves`] — the greedy move vocabulary (add / delete / swap),
//! * [`response`] — exact best response (branch-and-bound) and best greedy
//!   single moves,
//! * [`equilibrium`] — NE / GE (Greedy) / AE (Add-only) / β-approximate
//!   equilibrium certification,
//! * [`spanner_props`] — Lemma 1 / Lemma 2 spanner properties,
//! * [`poa`] — Price-of-Anarchy bookkeeping and the paper's bound formulas.

pub mod analysis;
pub mod cost;
pub mod equilibrium;
pub mod game;
pub mod moves;
pub mod poa;
pub mod profile;
pub mod response;
pub mod spanner_props;

pub use game::Game;
pub use moves::Move;
pub use profile::Profile;
pub use response::{BrBoundCache, SpeculativePricing, BR_STALENESS_BUDGET, PRICE_HORIZON};

pub use gncg_graph::{approx_eq, approx_le, strictly_less, NodeId, EPS};
