//! Agent and social cost evaluation.
//!
//! `cost(u, G(s)) = α·w(u, S_u) + d_G(s)(u, V)` — edge cost plus distance
//! cost, infinite when `u` cannot reach some node. Candidate strategies are
//! priced without mutating the profile via masked Dijkstra runs.

use std::collections::BTreeSet;

use gncg_graph::apsp::apsp_parallel;
use gncg_graph::dijkstra::{dijkstra, dijkstra_with_extra};
use gncg_graph::{AdjacencyList, NetworkDelta, NodeId};

use crate::{Game, Profile};

/// A cost split into its two components.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostBreakdown {
    /// `α · w(u, S_u)` — what the agent pays for its edges.
    pub edge_cost: f64,
    /// `d_G(u, V)` — sum of distances to all nodes (∞ if disconnected).
    pub distance_cost: f64,
}

impl CostBreakdown {
    /// Total cost.
    pub fn total(&self) -> f64 {
        self.edge_cost + self.distance_cost
    }
}

/// Edge cost of agent `u` under `profile`: `α·w(u, S_u)`.
pub fn edge_cost(game: &Game, profile: &Profile, u: NodeId) -> f64 {
    // `+ 0.0` normalizes the `-0.0` an empty f64 sum produces.
    game.alpha()
        * profile
            .strategy(u)
            .iter()
            .map(|&v| game.w(u, v))
            .sum::<f64>()
        + 0.0
}

/// Full cost of agent `u`, given the already-built network of `profile`.
pub fn agent_cost_in(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    u: NodeId,
) -> CostBreakdown {
    let dist: f64 = dijkstra(network, u).iter().sum();
    CostBreakdown {
        edge_cost: edge_cost(game, profile, u),
        distance_cost: dist,
    }
}

/// Full cost of agent `u` (builds the network internally).
pub fn agent_cost(game: &Game, profile: &Profile, u: NodeId) -> CostBreakdown {
    let network = profile.build_network(game);
    agent_cost_in(game, profile, &network, u)
}

/// The *base graph* for agent `u`: the built network with every edge that
/// exists solely because of `u`'s purchases removed. Candidate strategies
/// of `u` are priced by overlaying virtual edges on this graph.
pub fn base_graph_without(game: &Game, profile: &Profile, u: NodeId) -> AdjacencyList {
    base_graph_from(&profile.build_network(game), profile, u)
}

/// [`base_graph_without`] when the built network is already at hand —
/// avoids rebuilding `G(s)` from scratch just to strip one agent's edges.
/// The strip is expressed as a [`NetworkDelta`] of removals, the same
/// batched edge-change description the dynamics engine's move
/// application flows through.
pub fn base_graph_from(network: &AdjacencyList, profile: &Profile, u: NodeId) -> AdjacencyList {
    let mut delta = NetworkDelta::new();
    for (a, b) in profile.sole_owned_edges(u) {
        let w = network
            .edge_weight(a, b)
            .expect("sole-owned edge must be in the built network");
        delta.remove(a, b, w);
    }
    let mut g = network.clone();
    delta.apply_to(&mut g);
    g
}

/// Prices candidate strategy `candidate` for agent `u` against a
/// precomputed [`base_graph_without`]. Cheap enough to call inside
/// branch-and-bound search loops.
pub fn candidate_cost(
    game: &Game,
    base: &AdjacencyList,
    u: NodeId,
    candidate: &BTreeSet<NodeId>,
) -> CostBreakdown {
    let extra: Vec<(NodeId, NodeId, f64)> =
        candidate.iter().map(|&v| (u, v, game.w(u, v))).collect();
    let dist: f64 = dijkstra_with_extra(base, u, &extra).iter().sum();
    let edge: f64 = game.alpha() * candidate.iter().map(|&v| game.w(u, v)).sum::<f64>();
    CostBreakdown {
        edge_cost: edge,
        distance_cost: dist,
    }
}

/// Social cost of a profile: `Σ_u cost(u)` — equivalently
/// `α·Σ_u w(u, S_u) + Σ_u d_G(u, V)`.
pub fn social_cost(game: &Game, profile: &Profile) -> f64 {
    let network = profile.build_network(game);
    social_cost_in(game, profile, &network)
}

/// Social cost reusing a built network.
pub fn social_cost_in(game: &Game, profile: &Profile, network: &AdjacencyList) -> f64 {
    let d = apsp_parallel(network);
    let dist = d.total_distance_cost();
    let edges: f64 = (0..profile.n() as NodeId)
        .map(|u| edge_cost(game, profile, u))
        .sum();
    edges + dist
}

/// Social cost of an undirected *edge set* (ownership-independent): the
/// social cost of any profile inducing network `g` is
/// `α·(total edge weight) + (total pairwise distance)`, because each edge
/// is paid once by whoever owns it.
///
/// This is the objective the social-optimum solvers minimize, which is
/// valid because the optimum never double-buys an edge.
pub fn network_social_cost(game: &Game, g: &AdjacencyList) -> f64 {
    let d = apsp_parallel(g);
    game.alpha() * g.total_weight() + d.total_distance_cost()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_graph::SymMatrix;

    fn unit_game(n: usize, alpha: f64) -> Game {
        Game::new(SymMatrix::filled(n, 1.0), alpha)
    }

    #[test]
    fn star_costs_unit_metric() {
        // Star on 4 nodes, unit weights, α = 1. Center: edge 3, dist 3.
        let game = unit_game(4, 1.0);
        let p = Profile::star(4, 0);
        let c0 = agent_cost(&game, &p, 0);
        assert_eq!(c0.edge_cost, 3.0);
        assert_eq!(c0.distance_cost, 3.0);
        // Leaf: no edges, distances 1 + 2 + 2.
        let c1 = agent_cost(&game, &p, 1);
        assert_eq!(c1.edge_cost, 0.0);
        assert_eq!(c1.distance_cost, 5.0);
    }

    #[test]
    fn disconnected_cost_is_infinite() {
        let game = unit_game(3, 1.0);
        let mut p = Profile::empty(3);
        p.buy(0, 1);
        let c = agent_cost(&game, &p, 0);
        assert!(c.total().is_infinite());
    }

    #[test]
    fn social_cost_star() {
        // K4 star, α=1: edges 3·1, distances: center 3, each leaf 5 → 3+3+15=21.
        let game = unit_game(4, 1.0);
        let p = Profile::star(4, 0);
        assert_eq!(social_cost(&game, &p), 21.0);
        // Matches ownership-independent version.
        let g = p.build_network(&game);
        assert_eq!(network_social_cost(&game, &g), 21.0);
    }

    #[test]
    fn double_purchase_costs_both() {
        let game = unit_game(2, 3.0);
        let mut p = Profile::empty(2);
        p.buy(0, 1);
        p.buy(1, 0);
        // Each pays α = 3, distance 1 each: total 3+3+1+1 = 8.
        assert_eq!(social_cost(&game, &p), 8.0);
        // The edge-set view counts the edge once: 3 + 2 = 5.
        let g = p.build_network(&game);
        assert_eq!(network_social_cost(&game, &g), 5.0);
    }

    #[test]
    fn candidate_cost_matches_real_change() {
        let game = unit_game(5, 2.0);
        let mut p = Profile::star(5, 0);
        p.buy(1, 2); // extra edge
        let base = base_graph_without(&game, &p, 1);
        // Candidate: 1 buys towards 3 and 4 instead.
        let cand: BTreeSet<NodeId> = [3, 4].into_iter().collect();
        let predicted = candidate_cost(&game, &base, 1, &cand);
        // Apply for real and compare.
        let mut p2 = p.clone();
        p2.set_strategy(1, cand);
        let real = agent_cost(&game, &p2, 1);
        assert!(gncg_graph::approx_eq(predicted.total(), real.total()));
        assert!(gncg_graph::approx_eq(predicted.edge_cost, real.edge_cost));
    }

    #[test]
    fn candidate_cost_keeps_other_owners_edges() {
        // Agent 1's candidate change must not remove the edge 0-1 owned by 0.
        let game = unit_game(3, 1.0);
        let mut p = Profile::empty(3);
        p.buy(0, 1);
        p.buy(1, 2);
        let base = base_graph_without(&game, &p, 1);
        assert!(base.has_edge(0, 1));
        assert!(!base.has_edge(1, 2));
        let empty = BTreeSet::new();
        let c = candidate_cost(&game, &base, 1, &empty);
        // 1 keeps reaching 0 (dist 1) but loses 2 (∞).
        assert!(c.distance_cost.is_infinite());
    }

    #[test]
    fn weighted_costs() {
        let mut w = SymMatrix::filled(3, 1.0);
        w.set(0, 2, 5.0);
        w.set(1, 2, 2.0);
        let game = Game::new(w, 0.5);
        let p = Profile::from_owned_edges(3, &[(0, 1), (1, 2)]);
        let c0 = agent_cost(&game, &p, 0);
        assert_eq!(c0.edge_cost, 0.5);
        assert_eq!(c0.distance_cost, 1.0 + 3.0);
        let c1 = agent_cost(&game, &p, 1);
        assert_eq!(c1.edge_cost, 0.5 * 2.0);
        assert_eq!(c1.distance_cost, 1.0 + 2.0);
    }
}
