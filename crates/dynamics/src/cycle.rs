//! Profile-recurrence detection.
//!
//! Because strategies are finite, any infinite improving-move sequence must
//! revisit a profile; under a deterministic rule + scheduler a recurrence
//! certifies a genuine best-response cycle (the game has no potential
//! function — Theorem 14 / Theorem 17).

use std::collections::HashMap;

use gncg_core::Profile;

/// Records visited profiles and reports the first recurrence.
#[derive(Debug, Default)]
pub struct CycleDetector {
    seen: HashMap<Profile, usize>,
    steps: usize,
}

/// A detected recurrence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Recurrence {
    /// Step at which the profile was first seen.
    pub first_seen: usize,
    /// Step at which it recurred.
    pub recurred_at: usize,
}

impl Recurrence {
    /// Cycle length.
    pub fn period(&self) -> usize {
        self.recurred_at - self.first_seen
    }
}

impl CycleDetector {
    /// Creates an empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a profile; returns the recurrence if it was seen before.
    pub fn observe(&mut self, profile: &Profile) -> Option<Recurrence> {
        let step = self.steps;
        self.steps += 1;
        match self.seen.get(profile) {
            Some(&first) => Some(Recurrence {
                first_seen: first,
                recurred_at: step,
            }),
            None => {
                self.seen.insert(profile.clone(), step);
                None
            }
        }
    }

    /// Number of distinct profiles seen.
    pub fn distinct(&self) -> usize {
        self.seen.len()
    }

    /// Forgets every observation, keeping the map's allocation — the
    /// [`Engine`](crate::engine::Engine) resets detectors across batch
    /// cells this way instead of reallocating.
    pub fn clear(&mut self) {
        self.seen.clear();
        self.steps = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_recurrence() {
        let mut d = CycleDetector::new();
        let a = Profile::from_owned_edges(3, &[(0, 1)]);
        let b = Profile::from_owned_edges(3, &[(1, 2)]);
        assert!(d.observe(&a).is_none());
        assert!(d.observe(&b).is_none());
        let r = d.observe(&a).expect("recurrence");
        assert_eq!(r.first_seen, 0);
        assert_eq!(r.recurred_at, 2);
        assert_eq!(r.period(), 2);
        assert_eq!(d.distinct(), 2);
    }

    #[test]
    fn ownership_differences_are_distinct_states() {
        let mut d = CycleDetector::new();
        let a = Profile::from_owned_edges(3, &[(0, 1)]);
        let b = Profile::from_owned_edges(3, &[(1, 0)]);
        assert!(d.observe(&a).is_none());
        assert!(d.observe(&b).is_none());
        assert_eq!(d.distinct(), 2);
    }
}
