//! Per-move records of a dynamics run.

use gncg_graph::NodeId;

/// One applied strategy change.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// Round in which the move was applied (0-based).
    pub round: usize,
    /// The moving agent.
    pub agent: NodeId,
    /// Agent cost before the move.
    pub cost_before: f64,
    /// Agent cost after the move.
    pub cost_after: f64,
    /// Number of edges bought by the agent after the move.
    pub strategy_size: usize,
}

impl TraceEntry {
    /// The improvement achieved by the move (positive for improving moves;
    /// infinite-cost transitions report `f64::INFINITY`).
    pub fn improvement(&self) -> f64 {
        if self.cost_before.is_infinite() && self.cost_after.is_infinite() {
            0.0
        } else {
            self.cost_before - self.cost_after
        }
    }
}

/// A full run trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Applied moves in order.
    pub entries: Vec<TraceEntry>,
}

impl Trace {
    /// Total number of applied moves.
    pub fn moves(&self) -> usize {
        self.entries.len()
    }

    /// Whether every recorded move was strictly improving for its agent.
    pub fn all_improving(&self) -> bool {
        self.entries
            .iter()
            .all(|e| gncg_graph::strictly_less(e.cost_after, e.cost_before))
    }

    /// Rounds covered by the trace: `last round + 1` (rounds are 0-based),
    /// `0` for an empty trace. Silent rounds at the tail of a run record
    /// no entries, so this can undercount the run's round total.
    pub fn rounds(&self) -> usize {
        self.entries.iter().map(|e| e.round + 1).max().unwrap_or(0)
    }

    /// The largest single-move improvement applied in each round, `0.0`
    /// for rounds without entries — the applied-move lower bound on the
    /// [`crate::engine::RegretMeter`]'s *available*-improvement series
    /// (the meter prices moves not taken; this aggregates moves taken).
    pub fn max_improvement_by_round(&self) -> Vec<f64> {
        let mut out = vec![0.0f64; self.rounds()];
        for e in &self.entries {
            out[e.round] = out[e.round].max(e.improvement());
        }
        out
    }

    /// Applied moves per round (`0` for rounds without entries).
    pub fn moves_by_round(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.rounds()];
        for e in &self.entries {
            out[e.round] += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_math() {
        let e = TraceEntry {
            round: 0,
            agent: 1,
            cost_before: 10.0,
            cost_after: 7.5,
            strategy_size: 2,
        };
        assert_eq!(e.improvement(), 2.5);
        let inf = TraceEntry {
            cost_before: f64::INFINITY,
            cost_after: f64::INFINITY,
            ..e.clone()
        };
        assert_eq!(inf.improvement(), 0.0);
    }

    #[test]
    fn all_improving_detects_violations() {
        let mut t = Trace::default();
        t.entries.push(TraceEntry {
            round: 0,
            agent: 0,
            cost_before: 5.0,
            cost_after: 4.0,
            strategy_size: 1,
        });
        assert!(t.all_improving());
        t.entries.push(TraceEntry {
            round: 0,
            agent: 1,
            cost_before: 4.0,
            cost_after: 4.0,
            strategy_size: 1,
        });
        assert!(!t.all_improving());
        assert_eq!(t.moves(), 2);
    }

    #[test]
    fn per_round_aggregation() {
        let mut t = Trace::default();
        assert_eq!(t.rounds(), 0);
        assert!(t.max_improvement_by_round().is_empty());
        assert!(t.moves_by_round().is_empty());
        for (round, agent, before, after) in [(0, 0, 5.0, 4.0), (0, 1, 9.0, 5.5), (2, 2, 4.0, 3.0)]
        {
            t.entries.push(TraceEntry {
                round,
                agent,
                cost_before: before,
                cost_after: after,
                strategy_size: 1,
            });
        }
        assert_eq!(t.rounds(), 3);
        // Round 1 is silent: zero moves, zero improvement.
        assert_eq!(t.max_improvement_by_round(), vec![3.5, 0.0, 1.0]);
        assert_eq!(t.moves_by_round(), vec![2, 0, 1]);
    }
}
