//! Per-move records of a dynamics run.

use gncg_graph::NodeId;

/// One applied strategy change.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// Round in which the move was applied (0-based).
    pub round: usize,
    /// The moving agent.
    pub agent: NodeId,
    /// Agent cost before the move.
    pub cost_before: f64,
    /// Agent cost after the move.
    pub cost_after: f64,
    /// Number of edges bought by the agent after the move.
    pub strategy_size: usize,
}

impl TraceEntry {
    /// The improvement achieved by the move (positive for improving moves;
    /// infinite-cost transitions report `f64::INFINITY`).
    pub fn improvement(&self) -> f64 {
        if self.cost_before.is_infinite() && self.cost_after.is_infinite() {
            0.0
        } else {
            self.cost_before - self.cost_after
        }
    }
}

/// A full run trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Applied moves in order.
    pub entries: Vec<TraceEntry>,
}

impl Trace {
    /// Total number of applied moves.
    pub fn moves(&self) -> usize {
        self.entries.len()
    }

    /// Whether every recorded move was strictly improving for its agent.
    pub fn all_improving(&self) -> bool {
        self.entries
            .iter()
            .all(|e| gncg_graph::strictly_less(e.cost_after, e.cost_before))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_math() {
        let e = TraceEntry {
            round: 0,
            agent: 1,
            cost_before: 10.0,
            cost_after: 7.5,
            strategy_size: 2,
        };
        assert_eq!(e.improvement(), 2.5);
        let inf = TraceEntry {
            cost_before: f64::INFINITY,
            cost_after: f64::INFINITY,
            ..e.clone()
        };
        assert_eq!(inf.improvement(), 0.0);
    }

    #[test]
    fn all_improving_detects_violations() {
        let mut t = Trace::default();
        t.entries.push(TraceEntry {
            round: 0,
            agent: 0,
            cost_before: 5.0,
            cost_after: 4.0,
            strategy_size: 1,
        });
        assert!(t.all_improving());
        t.entries.push(TraceEntry {
            round: 0,
            agent: 1,
            cost_before: 4.0,
            cost_after: 4.0,
            strategy_size: 1,
        });
        assert!(!t.all_improving());
        assert_eq!(t.moves(), 2);
    }
}
