//! Parallel batch simulation: sweeps over α grids and instance seeds fan
//! out on the rayon pool. Independent runs make this embarrassingly
//! parallel — the hpc workhorse of the experiment harness.

use rayon::prelude::*;

use gncg_core::{Game, Profile, SpeculativePricing};
use gncg_graph::SymMatrix;

use crate::engine::{run, DynamicsConfig, Engine, RunResult};

/// One point of a sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The α used.
    pub alpha: f64,
    /// Index of the instance within the batch (e.g. the seed).
    pub instance: usize,
    /// Run result.
    pub result: RunResult,
    /// Social cost of the final profile.
    pub social_cost: f64,
}

/// Runs the dynamics for every `(host, α)` combination in parallel,
/// starting each run from `start_of(instance_idx, n)`.
pub fn sweep<F>(
    hosts: &[SymMatrix],
    alphas: &[f64],
    cfg: &DynamicsConfig,
    start_of: F,
) -> Vec<SweepPoint>
where
    F: Fn(usize, usize) -> Profile + Sync,
{
    let jobs: Vec<(usize, f64)> = (0..hosts.len())
        .flat_map(|i| alphas.iter().map(move |&a| (i, a)))
        .collect();
    jobs.into_par_iter()
        .map(|(i, alpha)| {
            let game = Game::new(hosts[i].clone(), alpha);
            let start = start_of(i, game.n());
            let result = run(&game, start, cfg);
            let social_cost = gncg_core::cost::social_cost(&game, &result.profile);
            SweepPoint {
                alpha,
                instance: i,
                result,
                social_cost,
            }
        })
        .collect()
}

/// [`sweep`] with an explicit speculative-pricing policy
/// ([`SpeculativePricing`]): each job's engine runs with `pricing`
/// installed, so a whole α/seed grid can run bounded-horizon
/// ([`SpeculativePricing::RegionDelta`]) pricing — still bitwise
/// deterministic at every thread count, under that policy's own byte
/// stream (sub-ulp ties may resolve differently from the default).
pub fn sweep_priced<F>(
    hosts: &[SymMatrix],
    alphas: &[f64],
    cfg: &DynamicsConfig,
    pricing: SpeculativePricing,
    start_of: F,
) -> Vec<SweepPoint>
where
    F: Fn(usize, usize) -> Profile + Sync,
{
    let jobs: Vec<(usize, f64)> = (0..hosts.len())
        .flat_map(|i| alphas.iter().map(move |&a| (i, a)))
        .collect();
    jobs.into_par_iter()
        .map(|(i, alpha)| {
            let game = Game::new(hosts[i].clone(), alpha);
            let start = start_of(i, game.n());
            let mut engine = Engine::new();
            engine.context_mut().set_pricing(pricing);
            let result = engine.run(&game, start, cfg);
            let social_cost = gncg_core::cost::social_cost(&game, &result.profile);
            SweepPoint {
                alpha,
                instance: i,
                result,
                social_cost,
            }
        })
        .collect()
}

/// Sequential reference implementation of [`sweep`] (for the parallelism
/// ablation bench and determinism tests).
pub fn sweep_sequential<F>(
    hosts: &[SymMatrix],
    alphas: &[f64],
    cfg: &DynamicsConfig,
    start_of: F,
) -> Vec<SweepPoint>
where
    F: Fn(usize, usize) -> Profile,
{
    let mut out = Vec::new();
    for (i, host) in hosts.iter().enumerate() {
        for &alpha in alphas {
            let game = Game::new(host.clone(), alpha);
            let start = start_of(i, game.n());
            let result = run(&game, start, cfg);
            let social_cost = gncg_core::cost::social_cost(&game, &result.profile);
            out.push(SweepPoint {
                alpha,
                instance: i,
                result,
                social_cost,
            });
        }
    }
    out
}

/// Fraction of sweep points that converged.
pub fn convergence_rate(points: &[SweepPoint]) -> f64 {
    if points.is_empty() {
        return 1.0;
    }
    points.iter().filter(|p| p.result.converged()).count() as f64 / points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ResponseRule, Scheduler};

    fn cfg() -> DynamicsConfig {
        DynamicsConfig {
            rule: ResponseRule::BestGreedyMove,
            scheduler: Scheduler::RoundRobin,
            max_rounds: 300,
            ..DynamicsConfig::default()
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let hosts: Vec<SymMatrix> = (0..3)
            .map(|s| gncg_metrics::arbitrary::random_metric(6, 1.0, 3.0, s))
            .collect();
        let alphas = [0.5, 1.0, 2.0];
        let par = sweep(&hosts, &alphas, &cfg(), |_, n| Profile::star(n, 0));
        let seq = sweep_sequential(&hosts, &alphas, &cfg(), |_, n| Profile::star(n, 0));
        assert_eq!(par.len(), seq.len());
        // Jobs are generated in the same order; results must agree exactly.
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.alpha, s.alpha);
            assert_eq!(p.instance, s.instance);
            assert_eq!(p.result.profile, s.result.profile);
            assert_eq!(p.social_cost, s.social_cost);
        }
    }

    #[test]
    fn priced_sweep_is_deterministic_per_policy() {
        let hosts: Vec<SymMatrix> = (0..2)
            .map(|s| gncg_metrics::arbitrary::random_metric(6, 1.0, 3.0, s + 10))
            .collect();
        let alphas = [0.5, 2.0];
        // FullSum through the priced entry point is the plain sweep.
        let full = sweep_priced(
            &hosts,
            &alphas,
            &cfg(),
            SpeculativePricing::FullSum,
            |_, n| Profile::star(n, 0),
        );
        let plain = sweep(&hosts, &alphas, &cfg(), |_, n| Profile::star(n, 0));
        for (a, b) in full.iter().zip(&plain) {
            assert_eq!(a.result.profile, b.result.profile);
            assert_eq!(a.social_cost, b.social_cost);
        }
        // RegionDelta parallel matches its own sequential replay bitwise.
        let rd = sweep_priced(
            &hosts,
            &alphas,
            &cfg(),
            SpeculativePricing::RegionDelta,
            |_, n| Profile::star(n, 0),
        );
        let mut engine = Engine::new();
        engine
            .context_mut()
            .set_pricing(SpeculativePricing::RegionDelta);
        let mut k = 0;
        for host in &hosts {
            for &alpha in &alphas {
                let game = Game::new(host.clone(), alpha);
                let result = engine.run(&game, Profile::star(game.n(), 0), &cfg());
                assert_eq!(rd[k].result.profile, result.profile);
                assert_eq!(
                    rd[k].social_cost,
                    gncg_core::cost::social_cost(&game, &result.profile)
                );
                k += 1;
            }
        }
    }

    #[test]
    fn convergence_rate_counts() {
        let hosts = vec![gncg_metrics::unit::unit_host(5)];
        let points = sweep(&hosts, &[2.0], &cfg(), |_, n| Profile::star(n, 0));
        assert_eq!(points.len(), 1);
        assert_eq!(convergence_rate(&points), 1.0);
        assert_eq!(convergence_rate(&[]), 1.0);
    }
}
