//! The dynamics run loop.
//!
//! A run repeatedly activates agents (per [`Scheduler`]) and lets each
//! activated agent apply an improving strategy change (per
//! [`ResponseRule`]). The run ends when
//!
//! * a full round passes with no applied move — the profile is an
//!   equilibrium *with respect to the rule's move space* (exact NE for
//!   [`ResponseRule::ExactBestResponse`], GE for
//!   [`ResponseRule::BestGreedyMove`], AE for [`ResponseRule::AddOnly`]),
//! * a profile recurs ([`Outcome::Cycle`]) — a finite-improvement-property
//!   violation witness under deterministic scheduling, or
//! * the round cap is hit ([`Outcome::MaxRoundsReached`]).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use gncg_core::response::{best_add_move, best_greedy_move, exact_best_response};
use gncg_core::{Game, NodeId, Profile};

use crate::cycle::{CycleDetector, Recurrence};
use crate::trace::{Trace, TraceEntry};

/// Which deviation space activated agents search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResponseRule {
    /// Exact best response (exponential per activation; small `n`).
    ExactBestResponse,
    /// Best single add / delete / swap (polynomial; converges to GE).
    BestGreedyMove,
    /// Best single addition (polynomial; converges to AE).
    AddOnly,
}

/// Agent activation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduler {
    /// `0, 1, …, n-1` every round (deterministic — recurrences certify
    /// genuine cycles).
    RoundRobin,
    /// A fresh uniformly random permutation each round.
    RandomOrder {
        /// RNG seed.
        seed: u64,
    },
    /// Each round activates only the agent with the largest available
    /// improvement (deterministic).
    MaxGain,
}

/// Run configuration.
#[derive(Clone, Copy, Debug)]
pub struct DynamicsConfig {
    /// Deviation space.
    pub rule: ResponseRule,
    /// Activation order.
    pub scheduler: Scheduler,
    /// Maximum rounds before giving up.
    pub max_rounds: usize,
    /// Whether to record a [`Trace`].
    pub record_trace: bool,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        DynamicsConfig {
            rule: ResponseRule::BestGreedyMove,
            scheduler: Scheduler::RoundRobin,
            max_rounds: 1_000,
            record_trace: false,
        }
    }
}

/// Why a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// A full round was silent: equilibrium w.r.t. the rule's move space.
    Converged {
        /// Rounds executed (including the final silent round).
        rounds: usize,
    },
    /// A previously seen profile recurred.
    Cycle {
        /// The recurrence.
        recurrence: Recurrence,
    },
    /// The cap was reached without convergence or recurrence.
    MaxRoundsReached,
}

/// Result of a dynamics run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Final profile.
    pub profile: Profile,
    /// Why the run ended.
    pub outcome: Outcome,
    /// Total applied moves.
    pub moves: usize,
    /// Optional per-move trace.
    pub trace: Option<Trace>,
}

impl RunResult {
    /// Whether the run ended in a certified equilibrium.
    pub fn converged(&self) -> bool {
        matches!(self.outcome, Outcome::Converged { .. })
    }
}

/// Runs the dynamics from `start` on `game`.
pub fn run(game: &Game, start: Profile, cfg: &DynamicsConfig) -> RunResult {
    let n = game.n();
    let mut profile = start;
    let mut detector = CycleDetector::new();
    detector.observe(&profile);
    let mut rng = match cfg.scheduler {
        Scheduler::RandomOrder { seed } => Some(StdRng::seed_from_u64(seed)),
        _ => None,
    };
    let mut trace = if cfg.record_trace {
        Some(Trace::default())
    } else {
        None
    };
    let mut moves = 0usize;

    for round in 0..cfg.max_rounds {
        let mut moved_this_round = false;
        let order: Vec<NodeId> = match cfg.scheduler {
            Scheduler::RoundRobin => (0..n as NodeId).collect(),
            Scheduler::RandomOrder { .. } => {
                let mut v: Vec<NodeId> = (0..n as NodeId).collect();
                v.shuffle(rng.as_mut().expect("rng set for RandomOrder"));
                v
            }
            Scheduler::MaxGain => {
                // Activate only the best-gain agent this round.
                match max_gain_agent(game, &profile, cfg.rule) {
                    Some(u) => vec![u],
                    None => Vec::new(),
                }
            }
        };
        for u in order {
            if let Some((new_strategy, before, after)) = improving_change(game, &profile, u, cfg.rule)
            {
                profile.set_strategy(u, new_strategy);
                moves += 1;
                moved_this_round = true;
                if let Some(t) = trace.as_mut() {
                    t.entries.push(TraceEntry {
                        round,
                        agent: u,
                        cost_before: before,
                        cost_after: after,
                        strategy_size: profile.strategy(u).len(),
                    });
                }
                if let Some(rec) = detector.observe(&profile) {
                    return RunResult {
                        profile,
                        outcome: Outcome::Cycle { recurrence: rec },
                        moves,
                        trace,
                    };
                }
            }
        }
        if !moved_this_round {
            return RunResult {
                profile,
                outcome: Outcome::Converged { rounds: round + 1 },
                moves,
                trace,
            };
        }
    }
    RunResult {
        profile,
        outcome: Outcome::MaxRoundsReached,
        moves,
        trace,
    }
}

/// The improving change of `u` under `rule`, with costs before/after.
fn improving_change(
    game: &Game,
    profile: &Profile,
    u: NodeId,
    rule: ResponseRule,
) -> Option<(std::collections::BTreeSet<NodeId>, f64, f64)> {
    match rule {
        ResponseRule::ExactBestResponse => {
            let br = exact_best_response(game, profile, u);
            if br.improves() {
                Some((br.strategy, br.current_cost, br.cost))
            } else {
                None
            }
        }
        ResponseRule::BestGreedyMove => best_greedy_move(game, profile, u).map(|(m, c)| {
            let before = gncg_core::cost::agent_cost(game, profile, u).total();
            (m.apply(u, profile.strategy(u)), before, c)
        }),
        ResponseRule::AddOnly => best_add_move(game, profile, u).map(|(m, c)| {
            let before = gncg_core::cost::agent_cost(game, profile, u).total();
            (m.apply(u, profile.strategy(u)), before, c)
        }),
    }
}

/// The agent with the largest improvement under `rule`, if any.
fn max_gain_agent(game: &Game, profile: &Profile, rule: ResponseRule) -> Option<NodeId> {
    let mut best: Option<(NodeId, f64)> = None;
    for u in 0..game.n() as NodeId {
        if let Some((_, before, after)) = improving_change(game, profile, u, rule) {
            let gain = if before.is_infinite() && after.is_finite() {
                f64::INFINITY
            } else {
                before - after
            };
            if best.is_none_or(|(_, g)| gain > g) {
                best = Some((u, gain));
            }
        }
    }
    best.map(|(u, _)| u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_graph::SymMatrix;

    fn unit_game(n: usize, alpha: f64) -> Game {
        Game::new(SymMatrix::filled(n, 1.0), alpha)
    }

    #[test]
    fn greedy_dynamics_reach_ge_on_unit_metric() {
        let game = unit_game(6, 2.0);
        let start = Profile::star(6, 0);
        let r = run(&game, start, &DynamicsConfig::default());
        assert!(r.converged());
        assert!(gncg_core::equilibrium::is_greedy_equilibrium(&game, &r.profile));
    }

    #[test]
    fn br_dynamics_from_star_already_stable() {
        let game = unit_game(5, 3.0);
        let r = run(
            &game,
            Profile::star(5, 0),
            &DynamicsConfig {
                rule: ResponseRule::ExactBestResponse,
                ..Default::default()
            },
        );
        assert_eq!(r.moves, 0);
        assert!(r.converged());
        assert!(gncg_core::equilibrium::is_nash_equilibrium(&game, &r.profile));
    }

    #[test]
    fn br_dynamics_converge_on_random_metric() {
        // No guarantee in general (no FIP), but these instances converge;
        // when they do, the result must certify as NE.
        let host = gncg_metrics::arbitrary::random_metric(6, 1.0, 3.0, 4);
        let game = Game::new(host, 1.5);
        let r = run(
            &game,
            Profile::star(6, 1),
            &DynamicsConfig {
                rule: ResponseRule::ExactBestResponse,
                max_rounds: 200,
                ..Default::default()
            },
        );
        if r.converged() {
            assert!(gncg_core::equilibrium::is_nash_equilibrium(&game, &r.profile));
        }
    }

    #[test]
    fn add_only_dynamics_reach_ae() {
        let game = unit_game(7, 0.4);
        let start = Profile::star(7, 0);
        let r = run(
            &game,
            start,
            &DynamicsConfig {
                rule: ResponseRule::AddOnly,
                record_trace: true,
                ..Default::default()
            },
        );
        assert!(r.converged());
        assert!(gncg_core::equilibrium::is_add_only_equilibrium(&game, &r.profile));
        let t = r.trace.expect("trace recorded");
        assert!(t.all_improving());
        assert_eq!(t.moves(), r.moves);
        // α < 1 on unit metric: everyone buys all missing edges.
        let g = r.profile.build_network(&game);
        assert_eq!(g.m(), 21);
    }

    #[test]
    fn max_gain_scheduler_converges() {
        let game = unit_game(5, 2.0);
        let r = run(
            &game,
            Profile::star(5, 2),
            &DynamicsConfig {
                scheduler: Scheduler::MaxGain,
                ..Default::default()
            },
        );
        assert!(r.converged());
    }

    #[test]
    fn random_scheduler_is_seed_deterministic() {
        let host = gncg_metrics::arbitrary::random_metric(6, 1.0, 3.0, 8);
        let game = Game::new(host, 1.0);
        let cfg = DynamicsConfig {
            scheduler: Scheduler::RandomOrder { seed: 5 },
            ..Default::default()
        };
        let a = run(&game, Profile::star(6, 0), &cfg);
        let b = run(&game, Profile::star(6, 0), &cfg);
        assert_eq!(a.profile, b.profile);
        assert_eq!(a.moves, b.moves);
    }

    #[test]
    fn cap_is_respected() {
        let game = unit_game(6, 0.4);
        let r = run(
            &game,
            Profile::star(6, 0),
            &DynamicsConfig {
                max_rounds: 1,
                ..Default::default()
            },
        );
        // One round cannot both apply moves and certify silence.
        assert!(!r.converged());
    }
}
