//! The dynamics run loop.
//!
//! A run repeatedly activates agents (per [`Scheduler`]) and lets each
//! activated agent apply an improving strategy change (per
//! [`ResponseRule`]). The run ends when
//!
//! * a full round passes with no applied move — the profile is an
//!   equilibrium *with respect to the rule's move space* (exact NE for
//!   [`ResponseRule::ExactBestResponse`], GE for
//!   [`ResponseRule::BestGreedyMove`], AE for [`ResponseRule::AddOnly`]),
//! * a profile recurs ([`Outcome::Cycle`]) — a finite-improvement-property
//!   violation witness under deterministic scheduling, or
//! * the round cap is hit ([`Outcome::MaxRoundsReached`]).
//!
//! # The reusable [`Engine`]
//!
//! Batch workloads (the scenario grid runner, the experiment harness)
//! execute thousands of runs back to back. All per-run scratch — the
//! cached network, the per-agent warm distance vectors, the
//! cycle-detector map — lives in an [`Engine`] and is *reset*, not
//! reallocated, between runs: construct one `Engine` per worker shard and
//! feed it cells. The free function [`run`] remains as the one-shot
//! convenience wrapper (it builds a throwaway `Engine`).
//!
//! # Cached-network evaluation and warm distance vectors
//!
//! Every activation needs the built network `G(s)` and the activated
//! agent's current cost. The engine maintains one [`EvalContext`]:
//!
//! * every accepted move is expressed as a [`NetworkDelta`] — the changed
//!   agent's dropped edges become removals unless co-owned, its new edges
//!   become insertions unless already present — and
//!   [`EvalContext::apply_delta`] is the **single way network state
//!   changes**: it stages the delta one edge at a time through the cached
//!   network;
//! * the context keeps **per-agent distance vectors warm across rounds**:
//!   an agent's current distance cost is read from its warm vector
//!   instead of the per-activation base Dijkstra the engine historically
//!   ran. Committed insertions are *logged* and replayed into a vector as
//!   one batched decrease-only relaxation when that vector is next read
//!   ([`DynamicSssp::relax_inserts`] — lazy sync, which keeps an
//!   add-heavy round `Θ(n²)` where eager per-move repair was `Θ(n³)`);
//!   each staged removal is a
//!   Ramalingam–Reps affected-region repair
//!   ([`DynamicSssp::remove_edges`], a delta's removals batched into one
//!   affected-region pass) — so warm vectors now survive moves of
//!   **every** kind (add, delete, swap), where removals historically
//!   invalidated all of them. The invalidate-and-redo behavior survives
//!   as [`RemovalPolicy::Invalidate`], the measured baseline of the
//!   `dynamics_swap_heavy` bench;
//! * the greedy rules' per-activation **candidate-move scan** prices each
//!   candidate *speculatively against the activated agent's warm vector*
//!   (apply the move's edge delta inside a speculation frame, read the
//!   cost off the warm sum, roll back —
//!   [`best_move_among_speculative_priced`]), instead of the historical masked
//!   from-scratch Dijkstra per candidate. The masked scan survives as
//!   [`ScanPolicy::MaskedDijkstra`], the equivalence oracle and measured
//!   baseline of the `move_scan` bench.
//!
//! The context is behaviorally invisible — `debug_assert`s re-derive the
//! network from the profile and every valid warm vector from a fresh
//! Dijkstra after each applied move, so the equivalence is
//! machine-checked in every debug-mode test run — and the costs produced
//! are bit-identical to rebuild-per-activation evaluation: warm vectors
//! equal a fresh Dijkstra's output exactly (both take exact minima over
//! identical sets of left-to-right path prefix sums, see
//! `gncg_graph::csr`), and sums are taken in the same index order.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use gncg_core::response::{
    best_move_among_given_current, best_move_among_speculative_priced,
    exact_best_response_given_current, BrBoundCache, SpeculativePricing,
};
use gncg_core::{Game, Move, NodeId, Profile};
use gncg_graph::{AdjacencyList, DijkstraScratch, DynamicSssp, NetworkDelta};

use crate::cycle::{CycleDetector, Recurrence};
use crate::trace::{Trace, TraceEntry};

/// Which deviation space activated agents search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResponseRule {
    /// Exact best response (exponential per activation; small `n`).
    ExactBestResponse,
    /// Best single add / delete / swap (polynomial; converges to GE).
    BestGreedyMove,
    /// Best single addition (polynomial; converges to AE).
    AddOnly,
}

/// Agent activation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduler {
    /// `0, 1, …, n-1` every round (deterministic — recurrences certify
    /// genuine cycles).
    RoundRobin,
    /// A fresh uniformly random permutation each round.
    RandomOrder {
        /// RNG seed.
        seed: u64,
    },
    /// Each round activates only the agent with the largest available
    /// improvement (deterministic; ties break towards the smaller id).
    MaxGain,
}

/// Run configuration.
#[derive(Clone, Copy, Debug)]
pub struct DynamicsConfig {
    /// Deviation space.
    pub rule: ResponseRule,
    /// Activation order.
    pub scheduler: Scheduler,
    /// Maximum rounds before giving up.
    pub max_rounds: usize,
    /// Whether to record a [`Trace`].
    pub record_trace: bool,
    /// Whether to record the per-round max-regret series
    /// ([`RunResult::regret_series`]) via a [`RegretMeter`] scan after
    /// each round. Off by default: the scan is behaviorally invisible
    /// (warm vectors equal fresh Dijkstras bitwise and speculation rolls
    /// back exactly), but it costs one all-agent pricing pass per round.
    pub regret_meter: bool,
    /// Checkpoint cadence in rounds: every `k`-th completed round (and
    /// the final round of the run) a [`Checkpoint`] of the full engine
    /// state is captured into [`RunResult::checkpoints`]. `0` disables
    /// checkpointing (the default).
    pub checkpoint_every: usize,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        DynamicsConfig {
            rule: ResponseRule::BestGreedyMove,
            scheduler: Scheduler::RoundRobin,
            max_rounds: 1_000,
            record_trace: false,
            regret_meter: false,
            checkpoint_every: 0,
        }
    }
}

/// Why a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// A full round was silent: equilibrium w.r.t. the rule's move space.
    Converged {
        /// Rounds executed (including the final silent round).
        rounds: usize,
    },
    /// A previously seen profile recurred.
    Cycle {
        /// The recurrence.
        recurrence: Recurrence,
    },
    /// The cap was reached without convergence or recurrence.
    MaxRoundsReached,
}

/// Result of a dynamics run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Final profile.
    pub profile: Profile,
    /// Why the run ended.
    pub outcome: Outcome,
    /// Rounds executed (for [`Outcome::Converged`] this includes the
    /// final silent round; for [`Outcome::Cycle`] the round the
    /// recurrence was observed in; for [`Outcome::MaxRoundsReached`] the
    /// cap itself).
    pub rounds: usize,
    /// Total applied moves.
    pub moves: usize,
    /// Optional per-move trace.
    pub trace: Option<Trace>,
    /// Per-round max regret ([`DynamicsConfig::regret_meter`]): entry `r`
    /// is the largest cost improvement any agent could still realize
    /// under the run's rule at the end of round `r`. `0.0` certifies an
    /// equilibrium w.r.t. the rule's move space, so on a converged run
    /// the final entry is exactly `0.0`.
    pub regret_series: Option<Vec<f64>>,
    /// Engine-state snapshots ([`DynamicsConfig::checkpoint_every`]), in
    /// round order.
    pub checkpoints: Option<Vec<Checkpoint>>,
}

impl RunResult {
    /// Whether the run ended in a certified equilibrium.
    pub fn converged(&self) -> bool {
        matches!(self.outcome, Outcome::Converged { .. })
    }
}

/// A serialized snapshot of engine state at the end of a round — the
/// unit of the trace time-travel layer: checkpoints ride inside the
/// cell's JSONL line through every sink/stream layer, and `gncg explore`
/// replays them (list per-agent cost/regret, diff strategies between
/// rounds) without re-running the dynamics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Checkpoint {
    /// The (0-based) round this snapshot closes.
    pub round: usize,
    /// Every agent's strategy, as a sorted owned-endpoint list.
    pub strategies: Vec<Vec<NodeId>>,
    /// Every agent's total cost `α·w(u, S_u) + d_G(u, V)`.
    pub costs: Vec<f64>,
    /// Every agent's regret under the run's rule (see [`RegretMeter`]).
    pub regrets: Vec<f64>,
}

impl Checkpoint {
    /// Captures the current engine state. `meter` must have been
    /// [`RegretMeter::measure`]d against the same `(game, profile, ctx,
    /// rule)` — the capture reuses its per-agent regrets and the warm
    /// vectors the scan left behind.
    fn capture(
        round: usize,
        game: &Game,
        profile: &Profile,
        ctx: &EvalContext,
        meter: &RegretMeter,
    ) -> Checkpoint {
        let n = game.n();
        Checkpoint {
            round,
            strategies: (0..n as NodeId)
                .map(|u| profile.strategy(u).iter().copied().collect())
                .collect(),
            costs: (0..n as NodeId)
                .map(|u| ctx.current_cost(game, profile, u))
                .collect(),
            regrets: meter.regrets().to_vec(),
        }
    }
}

/// The streaming max-regret meter: prices every agent's best available
/// improvement off the warm distance vectors in one speculative-delta
/// scan (the same pricing pass [`Scheduler::MaxGain`] runs to pick a
/// winner, kept whole instead of reduced), so "how far from equilibrium
/// is this profile" costs one parallel scan per round instead of `n`
/// from-scratch best responses. A max of `0.0` certifies an equilibrium
/// with respect to the rule's move space.
#[derive(Clone, Debug, Default)]
pub struct RegretMeter {
    regrets: Vec<f64>,
}

impl RegretMeter {
    /// A fresh meter (scratch grows on first measure).
    pub fn new() -> Self {
        RegretMeter::default()
    }

    /// Recomputes every agent's regret for `profile` under `rule` and
    /// returns the maximum. An agent's regret is its current cost minus
    /// the best cost any single `rule`-move reaches (`f64::INFINITY` when
    /// a move first makes the cost finite; `0.0` when no move improves).
    /// The scan is bitwise deterministic at every thread count and leaves
    /// `ctx` behaviorally untouched: it warms every vector (warm vectors
    /// equal fresh Dijkstras bitwise) and rolls every speculation back.
    pub fn measure(
        &mut self,
        game: &Game,
        profile: &Profile,
        ctx: &mut EvalContext,
        rule: ResponseRule,
    ) -> f64 {
        use rayon::prelude::*;
        ctx.ensure_all_warm();
        let n = game.n();
        if rule == ResponseRule::ExactBestResponse && ctx.br_policy == BrCachePolicy::Cached {
            // BR regrets come off the persistent bound tables: fan out
            // over the per-agent caches, reading the pre-warmed distance
            // vectors for current costs.
            let network = &ctx.network;
            let log = &ctx.insert_log;
            let warm = &ctx.warm;
            self.regrets = ctx.br[..n]
                .par_chunks_mut(1)
                .enumerate()
                .map(|(u, slot)| {
                    let uid = u as NodeId;
                    let cache = slot[0].get_or_insert_with(|| Box::new(BrBoundCache::new(uid)));
                    cache.ensure(game, profile, network, log);
                    let current = gncg_core::cost::edge_cost(game, profile, uid) + warm[u].sum();
                    let br = cache.best_response(game, profile, network, current);
                    if br.improves() {
                        if br.current_cost.is_infinite() && br.cost.is_finite() {
                            f64::INFINITY
                        } else {
                            br.current_cost - br.cost
                        }
                    } else {
                        0.0
                    }
                })
                .collect();
            return self.max();
        }
        let network = &ctx.network;
        let speculative = ctx.scan == ScanPolicy::SpeculativeDelta;
        let pricing = ctx.pricing;
        self.regrets = ctx.warm[..n]
            .par_chunks_mut(1)
            .enumerate()
            .map(|(u, slot)| {
                let u = u as NodeId;
                let warm = &mut slot[0];
                let current = gncg_core::cost::edge_cost(game, profile, u) + warm.sum();
                match improving_change(
                    game,
                    profile,
                    network,
                    speculative.then_some(warm),
                    None,
                    u,
                    rule,
                    current,
                    pricing,
                ) {
                    Some((_, before, after)) => {
                        if before.is_infinite() && after.is_finite() {
                            f64::INFINITY
                        } else {
                            before - after
                        }
                    }
                    None => 0.0,
                }
            })
            .collect();
        self.max()
    }

    /// The per-agent regrets of the last [`RegretMeter::measure`].
    pub fn regrets(&self) -> &[f64] {
        &self.regrets
    }

    /// The maximum regret of the last measure (`0.0` when never measured
    /// or when no agent improves — a certified equilibrium).
    pub fn max(&self) -> f64 {
        // Sequential fold in index order: deterministic at any thread
        // count, and `max` so an INFINITY entry dominates.
        self.regrets.iter().copied().fold(0.0, f64::max)
    }
}

/// An improving strategy change: the new strategy plus the agent's cost
/// before and after it.
type Change = (std::collections::BTreeSet<NodeId>, f64, f64);

/// How [`EvalContext::apply_delta`] treats warm distance vectors when a
/// delta removes edges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RemovalPolicy {
    /// Repair every warm vector in place through the removal
    /// ([`DynamicSssp::remove_edges`], Ramalingam–Reps affected-region
    /// re-relaxation, all of a delta's removals in one pass) — the
    /// default: vectors stay warm through moves of every kind.
    #[default]
    DynamicSssp,
    /// The historical behavior: any removal invalidates every warm vector
    /// (each is lazily recomputed by a fresh Dijkstra on its owner's next
    /// activation). Kept as the measured invalidate-and-redo baseline of
    /// the `dynamics_swap_heavy` bench; results are identical either way.
    Invalidate,
}

/// How the per-activation candidate-move scan of the greedy rules prices
/// each candidate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScanPolicy {
    /// Price each candidate by speculatively applying its edge delta to
    /// the activated agent's warm distance vector and rolling it back
    /// ([`best_move_among_speculative_priced`]) — the default. Chosen moves and
    /// totals are bit-identical to the masked baseline.
    #[default]
    SpeculativeDelta,
    /// The historical scan: one masked from-scratch Dijkstra per
    /// candidate ([`best_move_among_given_current`]). Kept as the
    /// equivalence oracle and the measured baseline of the `move_scan`
    /// bench.
    MaskedDijkstra,
}

/// How [`ResponseRule::ExactBestResponse`] activations price the exact
/// best response.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BrCachePolicy {
    /// Persistent per-agent bound tables ([`BrBoundCache`]) that survive
    /// from activation to activation, delta-maintained through the same
    /// committed-delta staging that keeps the warm vectors alive — the
    /// default. Chosen best responses and their costs are bit-identical
    /// to the rebuild baseline (machine-checked per search under
    /// `debug_assertions`), so the policy is invisible in every byte
    /// stream and does not participate in scenario digests.
    #[default]
    Cached,
    /// The historical path: rebuild the full `BrSearch` state — a CSR
    /// snapshot plus `n` Dijkstras for the bound table — on every
    /// activation. Kept as the equivalence oracle and the measured
    /// baseline of the `br_grid` bench.
    Rebuild,
}

/// The built network `G(s)` plus per-agent warm distance vectors, cached
/// across a run and maintained under strategy changes (see the module
/// docs for the delta/warm invariants).
#[derive(Debug, Default)]
pub struct EvalContext {
    network: AdjacencyList,
    /// Warm per-agent distance vectors (`warm[u]` from source `u` in the
    /// current network); entry `u` is meaningful only when `valid[u]`.
    warm: Vec<DynamicSssp>,
    valid: Vec<bool>,
    /// Append-only log of this run's committed edge insertions. Committed
    /// inserts are *not* eagerly relaxed into every warm vector (early in
    /// a run a single good edge improves `Θ(n)` distances in `Θ(n)`
    /// vectors — eager repair makes a round `Θ(n³)`); they are replayed
    /// into a vector in one batched pass when that vector is next read.
    insert_log: Vec<(NodeId, NodeId, f64)>,
    /// `synced[u]`: how many `insert_log` entries `warm[u]` already
    /// reflects. A vector is current iff `valid[u] && synced[u] ==
    /// insert_log.len()` — what [`EvalContext::ensure_warm`] establishes.
    synced: Vec<usize>,
    /// Scratch for (re)computing a warm vector from scratch.
    scratch: DijkstraScratch,
    dist_buf: Vec<f64>,
    /// Reusable edge-delta buffer for [`EvalContext::apply_strategy_change`].
    delta: NetworkDelta,
    /// Reusable actually-removed buffer for [`EvalContext::apply_delta`]'s
    /// batched warm-vector repair.
    removed_buf: Vec<(NodeId, NodeId, f64)>,
    /// Warm-vector treatment on removals (survives [`EvalContext::reset`]).
    policy: RemovalPolicy,
    /// Candidate-move pricing of the greedy scan (survives
    /// [`EvalContext::reset`]).
    scan: ScanPolicy,
    /// How the speculative scan reads candidate distance costs
    /// ([`SpeculativePricing`]; survives [`EvalContext::reset`]).
    pricing: SpeculativePricing,
    /// The game's host weight class, installed as the bucket-queue hint
    /// on the context's scratch and every warm vector at
    /// [`EvalContext::reset`] (`Game::weight_class`).
    weight_class: Option<(f64, f64)>,
    /// Per-agent persistent branch-and-bound bound tables for
    /// [`ResponseRule::ExactBestResponse`] ([`BrBoundCache`]); built
    /// lazily on an agent's first BR activation under
    /// [`BrCachePolicy::Cached`], invalidated on [`EvalContext::reset`]
    /// and raw [`EvalContext::apply_delta`] calls, and delta-maintained
    /// through [`EvalContext::apply_strategy_change`] otherwise. Boxed:
    /// the tables are `Θ(n²)` floats, absent entirely for non-BR runs.
    br: Vec<Option<Box<BrBoundCache>>>,
    /// BR pricing policy (survives [`EvalContext::reset`]).
    br_policy: BrCachePolicy,
}

impl EvalContext {
    /// Builds a context for `profile` on `game` (one full network
    /// construction; warm vectors fill lazily).
    pub fn new(game: &Game, profile: &Profile) -> Self {
        let mut ctx = EvalContext::default();
        ctx.reset(game, profile);
        ctx
    }

    /// Re-targets the context at a new run, reusing every allocation the
    /// previous run left behind.
    pub fn reset(&mut self, game: &Game, profile: &Profile) {
        self.network = profile.build_network(game);
        let n = game.n();
        if self.warm.len() < n {
            self.warm.resize_with(n, DynamicSssp::new);
        }
        // (Re)install the game's weight class as the bucket-queue hint:
        // the context may be re-targeted at a different game, so the
        // hint must never leak across runs.
        self.weight_class = game.weight_class();
        self.scratch.set_weight_class(self.weight_class);
        for warm in &mut self.warm[..n] {
            warm.set_weight_class(self.weight_class);
        }
        self.valid.clear();
        self.valid.resize(n, false);
        self.insert_log.clear();
        self.synced.clear();
        self.synced.resize(n, 0);
        // BR bound tables cannot survive a re-target (the committed-delta
        // stream they were maintained through ended with the old run);
        // they rebuild on their owner's first BR activation.
        if self.br.len() < n {
            self.br.resize_with(n, || None);
        }
        for cache in self.br.iter_mut().flatten() {
            cache.invalidate();
        }
    }

    /// The current network.
    #[inline]
    pub fn network(&self) -> &AdjacencyList {
        &self.network
    }

    /// Sets the warm-vector removal policy (see [`RemovalPolicy`]).
    /// Benchmarks use this to measure the invalidate-and-redo baseline;
    /// production callers keep the default.
    pub fn set_removal_policy(&mut self, policy: RemovalPolicy) {
        self.policy = policy;
    }

    /// The active removal policy.
    pub fn removal_policy(&self) -> RemovalPolicy {
        self.policy
    }

    /// Sets the candidate-move scan policy (see [`ScanPolicy`]).
    /// Benchmarks use this to measure the masked-Dijkstra baseline;
    /// production callers keep the default.
    pub fn set_scan_policy(&mut self, scan: ScanPolicy) {
        self.scan = scan;
    }

    /// The active scan policy.
    pub fn scan_policy(&self) -> ScanPolicy {
        self.scan
    }

    /// Sets the speculative scan's candidate pricing policy (see
    /// [`SpeculativePricing`]). [`SpeculativePricing::RegionDelta`] is a
    /// distinct deterministic policy — sub-ulp ties may resolve
    /// differently — so it participates in scenario digests and carries
    /// its own goldens; the default keeps every pre-existing byte
    /// stream.
    pub fn set_pricing(&mut self, pricing: SpeculativePricing) {
        self.pricing = pricing;
    }

    /// The active candidate pricing policy.
    pub fn pricing(&self) -> SpeculativePricing {
        self.pricing
    }

    /// Sets the exact-best-response pricing policy (see
    /// [`BrCachePolicy`]). Benchmarks and equivalence tests use this to
    /// measure the rebuild-every-activation baseline; production callers
    /// keep the default. Bitwise invisible either way.
    pub fn set_br_policy(&mut self, policy: BrCachePolicy) {
        self.br_policy = policy;
    }

    /// The active exact-best-response pricing policy.
    pub fn br_policy(&self) -> BrCachePolicy {
        self.br_policy
    }

    /// Agent `u`'s persistent BR bound tables, when they exist — an
    /// observability read (tests assert the staleness bookkeeping, the
    /// service reports resident bytes). `None` until `u`'s first BR
    /// activation under [`BrCachePolicy::Cached`].
    pub fn br_cache(&self, u: NodeId) -> Option<&BrBoundCache> {
        self.br.get(u as usize).and_then(|slot| slot.as_deref())
    }

    /// Bytes resident in the persistent BR bound tables across all agents
    /// (`0` unless a BR-rule run built them) — the `Θ(n²)`-per-agent
    /// companion figure to [`EvalContext::warm_resident_bytes`].
    pub fn br_resident_bytes(&self) -> usize {
        self.br
            .iter()
            .flatten()
            .map(|c| c.resident_bytes())
            .sum::<usize>()
    }

    /// Bytes resident in the warm-vector machinery: every per-agent
    /// [`DynamicSssp`] plus the shared Dijkstra scratch — the dominant
    /// per-context memory at large `n` (each warm vector holds `Θ(n)`
    /// floats). Capacity-based, so it reports what the allocator holds,
    /// not what the current run touches.
    pub fn warm_resident_bytes(&self) -> usize {
        self.warm
            .iter()
            .map(DynamicSssp::resident_bytes)
            .sum::<usize>()
            + self.insert_log.capacity() * std::mem::size_of::<(NodeId, NodeId, f64)>()
            + self.synced.capacity() * std::mem::size_of::<usize>()
    }

    /// The cached network together with agent `u`'s warm distance vector
    /// (the split borrow the speculative move scan works on) plus `u`'s
    /// BR bound cache when `want_br` — the three-way split borrow of the
    /// activation path. Requires a prior [`EvalContext::ensure_warm`] for
    /// `u`; with `want_br`, a prior [`EvalContext::ensure_br`] too.
    fn network_warm_br(
        &mut self,
        u: NodeId,
        want_br: bool,
    ) -> (&AdjacencyList, &mut DynamicSssp, Option<&mut BrBoundCache>) {
        debug_assert!(
            self.valid[u as usize] && self.synced[u as usize] == self.insert_log.len(),
            "network_warm_br on a cold or unsynced vector"
        );
        let br = if want_br {
            let cache = self.br[u as usize].as_deref_mut();
            debug_assert!(
                cache.as_ref().is_some_and(|c| c.is_built()),
                "network_warm_br(want_br) without a prior ensure_br"
            );
            cache
        } else {
            None
        };
        (&self.network, &mut self.warm[u as usize], br)
    }

    /// Makes agent `u`'s persistent BR bound tables current for the live
    /// network: a full rebuild when unbuilt (first BR activation this
    /// run) or past the staleness budget, otherwise one lazy replay of
    /// the pending committed-insert suffix ([`BrBoundCache::ensure`]).
    pub fn ensure_br(&mut self, game: &Game, profile: &Profile, u: NodeId) {
        let cache = self.br[u as usize].get_or_insert_with(|| Box::new(BrBoundCache::new(u)));
        cache.ensure(game, profile, &self.network, &self.insert_log);
    }

    /// Makes agent `u`'s warm distance vector current: a fresh Dijkstra
    /// when it was never computed this run (or, under
    /// [`RemovalPolicy::Invalidate`], invalidated by an edge-removing
    /// move), otherwise one batched replay of whatever committed edge
    /// insertions landed since the vector was last read
    /// ([`DynamicSssp::relax_inserts`] over the pending `insert_log`
    /// suffix).
    pub fn ensure_warm(&mut self, u: NodeId) {
        let i = u as usize;
        if !self.valid[i] {
            let n = self.network.n();
            self.scratch.run(&self.network, u, &[]);
            self.dist_buf.clear();
            self.dist_buf.resize(n, f64::INFINITY);
            self.scratch.write_distances(&mut self.dist_buf);
            self.warm[i].reset_from(u, &self.dist_buf);
            self.valid[i] = true;
            self.synced[i] = self.insert_log.len();
            return;
        }
        if self.synced[i] < self.insert_log.len() {
            self.warm[i].relax_inserts(&self.network, &self.insert_log[self.synced[i]..]);
            self.synced[i] = self.insert_log.len();
            #[cfg(debug_assertions)]
            {
                let fresh = gncg_graph::dijkstra::dijkstra(&self.network, u);
                debug_assert_eq!(
                    self.warm[i].dist(),
                    fresh.as_slice(),
                    "lazily synced warm vector of agent {u} drifted from a fresh Dijkstra"
                );
            }
        }
    }

    /// Warms every agent's distance vector, fanning the cold recomputes
    /// over the rayon pool (each is an independent Dijkstra; workers use
    /// private scratch) — the MaxGain pre-pass, which would otherwise
    /// serialize `n` Dijkstras after every removal-bearing move.
    pub fn ensure_all_warm(&mut self) {
        use rayon::prelude::*;
        let n = self.network.n();
        let network = &self.network;
        let valid = &self.valid;
        let class = self.weight_class;
        let log = &self.insert_log;
        let synced = &self.synced;
        self.warm[..n].par_chunks_mut(1).enumerate().for_each_init(
            || {
                let mut scratch = DijkstraScratch::new();
                scratch.set_weight_class(class);
                (scratch, Vec::new())
            },
            |(scratch, buf): &mut (DijkstraScratch, Vec<f64>), (u, slot)| {
                if valid[u] {
                    if synced[u] < log.len() {
                        slot[0].relax_inserts(network, &log[synced[u]..]);
                    }
                    return;
                }
                scratch.run(network, u as NodeId, &[]);
                buf.clear();
                buf.resize(n, f64::INFINITY);
                scratch.write_distances(buf);
                slot[0].reset_from(u as NodeId, buf);
            },
        );
        self.valid[..n].fill(true);
        let len = self.insert_log.len();
        self.synced[..n].fill(len);
    }

    /// Agent `u`'s distance cost `d_G(u, V)` read off its warm vector.
    /// Requires a prior [`EvalContext::ensure_warm`] for `u`.
    #[inline]
    pub fn distance_sum(&self, u: NodeId) -> f64 {
        debug_assert!(
            self.valid[u as usize] && self.synced[u as usize] == self.insert_log.len(),
            "distance_sum on a cold or unsynced vector"
        );
        self.warm[u as usize].sum()
    }

    /// Agent `u`'s full current cost `α·w(u, S_u) + d_G(u, V)` — the
    /// warm-vector replacement for the per-activation Dijkstra of
    /// `agent_cost_in`. Same addition order, bit-identical totals.
    #[inline]
    pub fn current_cost(&self, game: &Game, profile: &Profile, u: NodeId) -> f64 {
        gncg_core::cost::edge_cost(game, profile, u) + self.distance_sum(u)
    }

    /// Applies agent `u`'s strategy change by expressing it as a
    /// [`NetworkDelta`] and routing it through
    /// [`EvalContext::apply_delta`]. `profile` must already hold `u`'s
    /// *new* strategy; `old` is the strategy it replaced. An edge leaves
    /// only when its other endpoint does not also own it, and enters only
    /// when it is not already present.
    ///
    /// Warm vectors survive changes of **every** kind: insertions are
    /// logged for batched lazy replay on each vector's next read,
    /// removals repair in place (see [`RemovalPolicy`] and
    /// [`EvalContext::apply_delta`]).
    pub fn apply_strategy_change(
        &mut self,
        game: &Game,
        profile: &Profile,
        u: NodeId,
        old: &std::collections::BTreeSet<NodeId>,
    ) {
        let new = profile.strategy(u);
        let mut delta = std::mem::take(&mut self.delta);
        delta.clear();
        for &v in old.difference(new) {
            if !profile.owns(v, u) {
                let w = self
                    .network
                    .edge_weight(u, v)
                    .expect("dropped strategy edge must be in the cached network");
                delta.remove(u, v, w);
            }
        }
        for &v in new.difference(old) {
            if !self.network.has_edge(u, v) {
                delta.insert(u, v, game.w(u, v));
            }
        }
        // Persistent BR bound tables ride the same staging as the warm
        // vectors. Ahead of a removal, each built cache's exact base
        // distances flush their pending committed inserts (the replay
        // must see the base graph before edges leave it — the same
        // pre-removal sync `apply_delta` performs for warm vectors).
        let has_br = self
            .br
            .iter()
            .any(|c| c.as_ref().is_some_and(|c| c.is_built()));
        if has_br && !delta.removes().is_empty() {
            for cache in self.br.iter_mut().flatten() {
                cache.flush_d0(&self.insert_log);
            }
        }
        self.apply_delta_inner(&delta);
        if has_br {
            // `removed_buf` holds what actually left the network.
            if !self.removed_buf.is_empty() {
                let removed = std::mem::take(&mut self.removed_buf);
                for cache in self.br.iter_mut().flatten() {
                    cache.on_removals(&removed, u);
                }
                self.removed_buf = removed;
            }
            if !delta.inserts().is_empty() {
                for cache in self.br.iter_mut().flatten() {
                    cache.on_inserts(delta.inserts(), u);
                }
            }
            // Ownership flips: a strategy edge crossing the *other*
            // endpoint's sole-owned boundary without any network change
            // (the delta above is empty for it) still moves that edge
            // across the other endpoint's base graph.
            for &v in old.difference(new) {
                if profile.owns(v, u) {
                    if let Some(cache) = self.br[v as usize].as_deref_mut() {
                        cache.lose_co_owned(u, game.w(u, v), &self.insert_log);
                    }
                }
            }
            for &v in new.difference(old) {
                if profile.owns(v, u) {
                    if let Some(cache) = self.br[v as usize].as_deref_mut() {
                        cache.gain_co_owned(u, game.w(u, v), &self.insert_log);
                    }
                }
            }
        }
        self.delta = delta;
        #[cfg(debug_assertions)]
        {
            let rebuilt = profile.build_network(game);
            let mut a: Vec<_> = self.network.edges().collect();
            let mut b: Vec<_> = rebuilt.edges().collect();
            a.sort_by_key(|e| (e.0, e.1));
            b.sort_by_key(|e| (e.0, e.1));
            debug_assert_eq!(a, b, "EvalContext delta drifted from the rebuilt network");
            // Vectors with pending inserts are stale *by design*; the
            // fresh-Dijkstra oracle runs at sync time instead (see
            // [`EvalContext::ensure_warm`]), which also checks the ones
            // that are current here.
            for (x, ((inc, &valid), &synced)) in self
                .warm
                .iter()
                .zip(self.valid.iter())
                .zip(self.synced.iter())
                .enumerate()
            {
                if valid && synced == self.insert_log.len() {
                    let fresh = gncg_graph::dijkstra::dijkstra(&self.network, x as NodeId);
                    debug_assert_eq!(
                        inc.dist(),
                        fresh.as_slice(),
                        "warm distance vector of agent {x} drifted from a fresh Dijkstra"
                    );
                }
            }
        }
    }

    /// Applies a [`NetworkDelta`] to the cached network and the warm
    /// distance vectors — the single mutation path of the context.
    ///
    /// **Insertions are lazy.** A committed insert goes into the network
    /// and onto the `insert_log`; no vector is touched. Each vector
    /// replays its pending log suffix in one batched
    /// [`DynamicSssp::relax_inserts`] pass when it is next read
    /// ([`EvalContext::ensure_warm`]). Early in a run a single committed
    /// edge improves `Θ(n)` distances in `Θ(n)` vectors, so the eager
    /// per-move repair this replaces made an add-heavy round `Θ(n³)`;
    /// batched lazy sync settles each improved node once per *read*
    /// instead of once per improving edge, and both schedules end on the
    /// same exact — hence bitwise-identical — fixpoint.
    ///
    /// **Removals are eager** (they cannot be replayed decrease-only).
    /// Every valid vector is first synced to the pre-removal network —
    /// the exactness contract of [`DynamicSssp::remove_edges`] — then the
    /// edges leave the network and each vector takes one batched
    /// affected-region repair. Under [`RemovalPolicy::Invalidate`]
    /// removals instead flag every vector for lazy recomputation (the
    /// historical baseline).
    ///
    /// Degenerate changes follow [`NetworkDelta::apply_to`]'s semantics
    /// exactly: removing an absent edge and re-inserting a present one
    /// are no-ops — for the network *and* the warm vectors, which must
    /// never be "repaired" for a change that did not happen.
    ///
    /// A raw delta bypasses the profile knowledge the persistent BR bound
    /// tables are maintained through (mover identity, ownership flips),
    /// so this entry point invalidates them; they rebuild on their
    /// owner's next BR activation. The run loop's own moves go through
    /// [`EvalContext::apply_strategy_change`], which delta-maintains the
    /// tables instead.
    pub fn apply_delta(&mut self, delta: &NetworkDelta) {
        for cache in self.br.iter_mut().flatten() {
            cache.invalidate();
        }
        self.apply_delta_inner(delta);
    }

    fn apply_delta_inner(&mut self, delta: &NetworkDelta) {
        let will_remove = delta
            .removes()
            .iter()
            .any(|&(a, b, _)| self.network.has_edge(a, b));
        if will_remove && self.policy == RemovalPolicy::DynamicSssp {
            // Bring every valid vector up to the pre-removal network:
            // remove_edges requires the vector to be exact for the graph
            // the edge is leaving, and pending inserts replay against a
            // network that must still hold the edges about to go.
            let log = &self.insert_log;
            for ((inc, &valid), synced) in self
                .warm
                .iter_mut()
                .zip(self.valid.iter())
                .zip(self.synced.iter_mut())
            {
                if valid && *synced < log.len() {
                    inc.relax_inserts(&self.network, &log[*synced..]);
                    *synced = log.len();
                }
            }
        }
        let mut removed = std::mem::take(&mut self.removed_buf);
        removed.clear();
        for &(a, b, w) in delta.removes() {
            if self.network.remove_edge(a, b) {
                removed.push((a, b, w));
            }
        }
        if !removed.is_empty() {
            match self.policy {
                RemovalPolicy::Invalidate => self.valid.fill(false),
                RemovalPolicy::DynamicSssp => {
                    for (inc, &valid) in self.warm.iter_mut().zip(self.valid.iter()) {
                        if valid {
                            inc.remove_edges(&self.network, &removed);
                        }
                    }
                }
            }
        }
        self.removed_buf = removed;
        for &(a, b, w) in delta.inserts() {
            if self.network.has_edge(a, b) {
                continue;
            }
            self.network.add_edge(a, b, w);
            self.insert_log.push((a, b, w));
        }
    }
}

/// A reusable dynamics engine: owns every piece of per-run scratch (the
/// [`EvalContext`], the cycle detector) and resets it between runs, so
/// batch cells (scenario grids, sweeps, the experiment harness) pay the
/// allocations once per worker instead of once per run.
#[derive(Debug, Default)]
pub struct Engine {
    ctx: EvalContext,
    detector: CycleDetector,
}

impl Engine {
    /// A fresh engine (scratch grows lazily to the largest run seen).
    pub fn new() -> Self {
        Engine::default()
    }

    /// The engine's [`EvalContext`]. After [`Engine::run`] returns, the
    /// context still holds the *final* profile's network and whatever
    /// warm distance vectors the run left valid — callers can certify
    /// stability of the returned profile incrementally (see
    /// [`agent_is_stable_given_current`]) without rebuilding anything.
    pub fn context_mut(&mut self) -> &mut EvalContext {
        &mut self.ctx
    }

    /// Bytes resident in this engine's warm-vector machinery
    /// ([`EvalContext::warm_resident_bytes`]) — the figure the service's
    /// `warm_resident_bytes` gauge reports.
    pub fn warm_resident_bytes(&self) -> usize {
        self.ctx.warm_resident_bytes()
    }

    /// Drops run-specific state (the cycle-detector map, the cached
    /// network and its warm vectors) while keeping every allocation, so a
    /// long-lived worker — e.g. a service worker thread holding one
    /// engine across *jobs*, not just across the cells of one batch —
    /// releases references into the last job's data without paying the
    /// scratch allocations again on the next one.
    pub fn recycle(&mut self) {
        self.detector.clear();
        self.ctx.network = AdjacencyList::default();
        self.ctx.valid.fill(false);
        self.ctx.insert_log.clear();
        // BR bound tables own graph copies of the last job's network;
        // drop them outright (they are absent for non-BR work anyway).
        for slot in &mut self.ctx.br {
            *slot = None;
        }
    }

    /// Runs the dynamics from `start` on `game`.
    pub fn run(&mut self, game: &Game, start: Profile, cfg: &DynamicsConfig) -> RunResult {
        let n = game.n();
        let mut profile = start;
        self.ctx.reset(game, &profile);
        self.detector.clear();
        self.detector.observe(&profile);
        let mut rng = match cfg.scheduler {
            Scheduler::RandomOrder { seed } => Some(StdRng::seed_from_u64(seed)),
            _ => None,
        };
        let mut trace = if cfg.record_trace {
            Some(Trace::default())
        } else {
            None
        };
        // One meter serves both observability features: the per-round
        // series takes its max, checkpoint frames take the whole vector.
        let mut meter = (cfg.regret_meter || cfg.checkpoint_every > 0).then(RegretMeter::new);
        let mut regret_series: Option<Vec<f64>> = cfg.regret_meter.then(Vec::new);
        let mut checkpoints: Option<Vec<Checkpoint>> = (cfg.checkpoint_every > 0).then(Vec::new);
        let mut moves = 0usize;

        for round in 0..cfg.max_rounds {
            let mut moved_this_round = false;
            // MaxGain computes each agent's change while scanning; reuse
            // the winner's instead of recomputing it after scheduling.
            let scheduled: Vec<(NodeId, Option<Change>)> = match cfg.scheduler {
                Scheduler::RoundRobin => (0..n as NodeId).map(|u| (u, None)).collect(),
                Scheduler::RandomOrder { .. } => {
                    let mut v: Vec<NodeId> = (0..n as NodeId).collect();
                    v.shuffle(rng.as_mut().expect("rng set for RandomOrder"));
                    v.into_iter().map(|u| (u, None)).collect()
                }
                Scheduler::MaxGain => {
                    // The parallel scan works on disjoint warm vectors
                    // (one per agent): warm every vector up front (itself
                    // pool-parallel).
                    self.ctx.ensure_all_warm();
                    match max_gain_change(game, &profile, &mut self.ctx, cfg.rule) {
                        Some((u, change)) => vec![(u, Some(change))],
                        None => Vec::new(),
                    }
                }
            };
            for (u, precomputed) in scheduled {
                let change = match precomputed {
                    Some(c) => Some(c),
                    None => {
                        self.ctx.ensure_warm(u);
                        let current = self.ctx.current_cost(game, &profile, u);
                        let speculative = self.ctx.scan_policy() == ScanPolicy::SpeculativeDelta;
                        let pricing = self.ctx.pricing();
                        let use_br = cfg.rule == ResponseRule::ExactBestResponse
                            && self.ctx.br_policy() == BrCachePolicy::Cached;
                        if use_br {
                            self.ctx.ensure_br(game, &profile, u);
                        }
                        let (network, warm, br) = self.ctx.network_warm_br(u, use_br);
                        improving_change(
                            game,
                            &profile,
                            network,
                            speculative.then_some(warm),
                            br,
                            u,
                            cfg.rule,
                            current,
                            pricing,
                        )
                    }
                };
                if let Some((new_strategy, before, after)) = change {
                    let old = profile.strategy(u).clone();
                    profile.set_strategy(u, new_strategy);
                    self.ctx.apply_strategy_change(game, &profile, u, &old);
                    moves += 1;
                    moved_this_round = true;
                    if let Some(t) = trace.as_mut() {
                        t.entries.push(TraceEntry {
                            round,
                            agent: u,
                            cost_before: before,
                            cost_after: after,
                            strategy_size: profile.strategy(u).len(),
                        });
                    }
                    if let Some(rec) = self.detector.observe(&profile) {
                        // A recurrence aborts mid-round: the series and
                        // checkpoints cover the completed rounds only.
                        return RunResult {
                            profile,
                            outcome: Outcome::Cycle { recurrence: rec },
                            rounds: round + 1,
                            moves,
                            trace,
                            regret_series,
                            checkpoints,
                        };
                    }
                }
            }
            if let Some(m) = meter.as_mut() {
                // End-of-round observability hook. The final round of a
                // run is always checkpointed (a silent round or the cap),
                // so `explore` can land on the terminal state.
                let last = !moved_this_round || round + 1 == cfg.max_rounds;
                let frame_due =
                    cfg.checkpoint_every > 0 && (last || (round + 1) % cfg.checkpoint_every == 0);
                if cfg.regret_meter || frame_due {
                    let max = m.measure(game, &profile, &mut self.ctx, cfg.rule);
                    if let Some(series) = regret_series.as_mut() {
                        series.push(max);
                    }
                    if frame_due {
                        checkpoints
                            .as_mut()
                            .expect("checkpoint vec allocated when cadence > 0")
                            .push(Checkpoint::capture(round, game, &profile, &self.ctx, m));
                    }
                }
            }
            if !moved_this_round {
                return RunResult {
                    profile,
                    outcome: Outcome::Converged { rounds: round + 1 },
                    rounds: round + 1,
                    moves,
                    trace,
                    regret_series,
                    checkpoints,
                };
            }
        }
        RunResult {
            profile,
            outcome: Outcome::MaxRoundsReached,
            rounds: cfg.max_rounds,
            moves,
            trace,
            regret_series,
            checkpoints,
        }
    }
}

/// Runs the dynamics from `start` on `game` with a throwaway [`Engine`].
/// Batch callers should hold an `Engine` and call [`Engine::run`] instead
/// so scratch is reused across runs.
pub fn run(game: &Game, start: Profile, cfg: &DynamicsConfig) -> RunResult {
    Engine::new().run(game, start, cfg)
}

/// The improving change of `u` under `rule`, with costs before/after,
/// evaluated against the cached `network`. `current` is `u`'s current
/// total cost (read off its warm vector by the caller).
///
/// This is the **unified move scan**: the greedy rules price their
/// candidate moves speculatively against `warm` when it is supplied
/// ([`ScanPolicy::SpeculativeDelta`] — the warm vector is borrowed
/// mutably for apply → read → rollback and comes back bitwise
/// untouched), and fall back to the masked-Dijkstra oracle when it is
/// not ([`ScanPolicy::MaskedDijkstra`]). Both paths choose the same move
/// at the same cost bits. The exact-best-response rule has its own
/// incremental engine and ignores `warm`: it searches off `u`'s
/// persistent bound tables when `br` is supplied
/// ([`BrCachePolicy::Cached`], tables kept current by the caller), and
/// rebuilds the full search state when it is not
/// ([`BrCachePolicy::Rebuild`]) — bitwise-identical responses either way.
#[allow(clippy::too_many_arguments)]
fn improving_change(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    warm: Option<&mut DynamicSssp>,
    br: Option<&mut BrBoundCache>,
    u: NodeId,
    rule: ResponseRule,
    current: f64,
    pricing: SpeculativePricing,
) -> Option<Change> {
    let moves = match rule {
        ResponseRule::ExactBestResponse => {
            let br = match br {
                Some(cache) => {
                    debug_assert_eq!(cache.agent(), u, "BR cache routed to the wrong agent");
                    cache.best_response(game, profile, network, current)
                }
                None => exact_best_response_given_current(game, profile, network, u, current),
            };
            return if br.improves() {
                Some((br.strategy, br.current_cost, br.cost))
            } else {
                None
            };
        }
        ResponseRule::BestGreedyMove => Move::greedy_moves(profile, u),
        ResponseRule::AddOnly => Move::add_moves(profile, u),
    };
    match warm {
        Some(warm) => best_move_among_speculative_priced(
            game, profile, network, warm, u, current, &moves, pricing,
        ),
        None => best_move_among_given_current(game, profile, network, u, current, &moves),
    }
    .map(|(m, c)| (m.apply(u, profile.strategy(u)), current, c))
}

/// Whether agent `u` has **no** improving change under `rule`, evaluated
/// incrementally against `ctx`'s cached network and warm distance vectors
/// (the same `*_given_current` entry points the run loop itself uses).
/// `ctx` must describe `profile`'s network — e.g. the context of the
/// [`Engine`] that just produced `profile`, via [`Engine::context_mut`] —
/// so certification costs one warm-vector read plus one deviation scan
/// instead of a from-scratch network build and Dijkstra per agent.
pub fn agent_is_stable_given_current(
    game: &Game,
    profile: &Profile,
    ctx: &mut EvalContext,
    u: NodeId,
    rule: ResponseRule,
) -> bool {
    ctx.ensure_warm(u);
    let current = ctx.current_cost(game, profile, u);
    let speculative = ctx.scan_policy() == ScanPolicy::SpeculativeDelta;
    let pricing = ctx.pricing();
    let use_br =
        rule == ResponseRule::ExactBestResponse && ctx.br_policy() == BrCachePolicy::Cached;
    if use_br {
        ctx.ensure_br(game, profile, u);
    }
    let (network, warm, br) = ctx.network_warm_br(u, use_br);
    improving_change(
        game,
        profile,
        network,
        speculative.then_some(warm),
        br,
        u,
        rule,
        current,
        pricing,
    )
    .is_none()
}

/// The agent with the largest improvement under `rule` together with the
/// improving change itself, so the caller never recomputes it. The scan
/// over agents fans out on the rayon pool, each worker borrowing exactly
/// its agent's (pre-warmed) distance vector mutably for the speculative
/// apply → read → rollback cycle; the reduction is deterministic (max
/// gain, ties to the smaller agent id), so the schedule matches the
/// sequential scan exactly.
fn max_gain_change(
    game: &Game,
    profile: &Profile,
    ctx: &mut EvalContext,
    rule: ResponseRule,
) -> Option<(NodeId, Change)> {
    use rayon::prelude::*;
    let n = game.n();
    debug_assert!(
        ctx.valid[..n].iter().all(|&v| v)
            && ctx.synced[..n].iter().all(|&s| s == ctx.insert_log.len()),
        "max_gain_change requires a prior ensure_all_warm"
    );
    if rule == ResponseRule::ExactBestResponse && ctx.br_policy == BrCachePolicy::Cached {
        return max_gain_change_br(game, profile, ctx);
    }
    let network = &ctx.network;
    let speculative = ctx.scan == ScanPolicy::SpeculativeDelta;
    let pricing = ctx.pricing;
    let winner = ctx.warm[..n]
        .par_chunks_mut(1)
        .enumerate()
        .filter_map(|(u, slot)| {
            let u = u as NodeId;
            let warm = &mut slot[0];
            let current = gncg_core::cost::edge_cost(game, profile, u) + warm.sum();
            improving_change(
                game,
                profile,
                network,
                speculative.then_some(warm),
                None,
                u,
                rule,
                current,
                pricing,
            )
            .map(|(s, before, after)| {
                let gain = if before.is_infinite() && after.is_finite() {
                    f64::INFINITY
                } else {
                    before - after
                };
                (u, gain, (s, before, after))
            })
        })
        .reduce(
            // Sentinel: no agent improves. NodeId::MAX never collides with
            // a real agent (n is far below 2^32).
            || (NodeId::MAX, f64::NEG_INFINITY, Default::default()),
            |a, b| {
                // Strictly-greater keeps the earlier (smaller-id) agent on
                // ties, matching the historical sequential scan.
                if b.1 > a.1 || (b.1 == a.1 && b.0 < a.0) {
                    b
                } else {
                    a
                }
            },
        );
    if winner.0 == NodeId::MAX {
        None
    } else {
        Some((winner.0, winner.2))
    }
}

/// [`max_gain_change`] for BR rule under [`BrCachePolicy::Cached`]: the
/// parallel scan fans out over the per-agent *bound caches* instead of
/// the warm vectors (each worker ensures and searches exactly its agent's
/// tables; the pre-warmed distance vectors are only read), with the same
/// deterministic reduction — max gain, ties to the smaller agent id.
fn max_gain_change_br(
    game: &Game,
    profile: &Profile,
    ctx: &mut EvalContext,
) -> Option<(NodeId, Change)> {
    use rayon::prelude::*;
    let n = game.n();
    let network = &ctx.network;
    let log = &ctx.insert_log;
    let warm = &ctx.warm;
    let winner = ctx.br[..n]
        .par_chunks_mut(1)
        .enumerate()
        .filter_map(|(u, slot)| {
            let uid = u as NodeId;
            let cache = slot[0].get_or_insert_with(|| Box::new(BrBoundCache::new(uid)));
            cache.ensure(game, profile, network, log);
            let current = gncg_core::cost::edge_cost(game, profile, uid) + warm[u].sum();
            let br = cache.best_response(game, profile, network, current);
            br.improves().then(|| {
                let gain = if br.current_cost.is_infinite() && br.cost.is_finite() {
                    f64::INFINITY
                } else {
                    br.current_cost - br.cost
                };
                (uid, gain, (br.strategy, br.current_cost, br.cost))
            })
        })
        .reduce(
            || (NodeId::MAX, f64::NEG_INFINITY, Default::default()),
            |a, b| {
                if b.1 > a.1 || (b.1 == a.1 && b.0 < a.0) {
                    b
                } else {
                    a
                }
            },
        );
    if winner.0 == NodeId::MAX {
        None
    } else {
        Some((winner.0, winner.2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_graph::SymMatrix;

    fn unit_game(n: usize, alpha: f64) -> Game {
        Game::new(SymMatrix::filled(n, 1.0), alpha)
    }

    #[test]
    fn greedy_dynamics_reach_ge_on_unit_metric() {
        let game = unit_game(6, 2.0);
        let start = Profile::star(6, 0);
        let r = run(&game, start, &DynamicsConfig::default());
        assert!(r.converged());
        assert!(gncg_core::equilibrium::is_greedy_equilibrium(
            &game, &r.profile
        ));
    }

    #[test]
    fn br_dynamics_from_star_already_stable() {
        let game = unit_game(5, 3.0);
        let r = run(
            &game,
            Profile::star(5, 0),
            &DynamicsConfig {
                rule: ResponseRule::ExactBestResponse,
                ..Default::default()
            },
        );
        assert_eq!(r.moves, 0);
        assert!(r.converged());
        assert_eq!(r.rounds, 1);
        assert!(gncg_core::equilibrium::is_nash_equilibrium(
            &game, &r.profile
        ));
    }

    #[test]
    fn br_dynamics_converge_on_random_metric() {
        // No guarantee in general (no FIP), but these instances converge;
        // when they do, the result must certify as NE.
        let host = gncg_metrics::arbitrary::random_metric(6, 1.0, 3.0, 4);
        let game = Game::new(host, 1.5);
        let r = run(
            &game,
            Profile::star(6, 1),
            &DynamicsConfig {
                rule: ResponseRule::ExactBestResponse,
                max_rounds: 200,
                ..Default::default()
            },
        );
        if r.converged() {
            assert!(gncg_core::equilibrium::is_nash_equilibrium(
                &game, &r.profile
            ));
        }
    }

    #[test]
    fn add_only_dynamics_reach_ae() {
        let game = unit_game(7, 0.4);
        let start = Profile::star(7, 0);
        let r = run(
            &game,
            start,
            &DynamicsConfig {
                rule: ResponseRule::AddOnly,
                record_trace: true,
                ..Default::default()
            },
        );
        assert!(r.converged());
        assert!(gncg_core::equilibrium::is_add_only_equilibrium(
            &game, &r.profile
        ));
        let t = r.trace.expect("trace recorded");
        assert!(t.all_improving());
        assert_eq!(t.moves(), r.moves);
        // α < 1 on unit metric: everyone buys all missing edges.
        let g = r.profile.build_network(&game);
        assert_eq!(g.m(), 21);
    }

    #[test]
    fn max_gain_scheduler_converges() {
        let game = unit_game(5, 2.0);
        let r = run(
            &game,
            Profile::star(5, 2),
            &DynamicsConfig {
                scheduler: Scheduler::MaxGain,
                ..Default::default()
            },
        );
        assert!(r.converged());
    }

    #[test]
    fn max_gain_matches_round_robin_equilibrium_class() {
        // MaxGain must land in the same equilibrium class (certified GE)
        // and its precomputed change must behave like a fresh computation.
        let host = gncg_metrics::arbitrary::random_metric(6, 1.0, 3.0, 13);
        let game = Game::new(host, 1.2);
        let r = run(
            &game,
            Profile::star(6, 0),
            &DynamicsConfig {
                scheduler: Scheduler::MaxGain,
                max_rounds: 500,
                ..Default::default()
            },
        );
        if r.converged() {
            assert!(gncg_core::equilibrium::is_greedy_equilibrium(
                &game, &r.profile
            ));
        }
    }

    #[test]
    fn random_scheduler_is_seed_deterministic() {
        let host = gncg_metrics::arbitrary::random_metric(6, 1.0, 3.0, 8);
        let game = Game::new(host, 1.0);
        let cfg = DynamicsConfig {
            scheduler: Scheduler::RandomOrder { seed: 5 },
            ..Default::default()
        };
        let a = run(&game, Profile::star(6, 0), &cfg);
        let b = run(&game, Profile::star(6, 0), &cfg);
        assert_eq!(a.profile, b.profile);
        assert_eq!(a.moves, b.moves);
    }

    #[test]
    fn reused_engine_matches_throwaway_runs() {
        // One Engine across heterogeneous cells (different hosts, sizes,
        // rules) must produce exactly what fresh engines produce.
        let mut engine = Engine::new();
        let cases: Vec<(Game, ResponseRule)> = vec![
            (unit_game(6, 2.0), ResponseRule::BestGreedyMove),
            (
                Game::new(gncg_metrics::arbitrary::random_metric(8, 1.0, 3.0, 2), 1.5),
                ResponseRule::ExactBestResponse,
            ),
            (unit_game(4, 0.3), ResponseRule::AddOnly),
            (
                Game::new(gncg_metrics::arbitrary::random_metric(5, 1.0, 4.0, 9), 0.8),
                ResponseRule::BestGreedyMove,
            ),
        ];
        for (game, rule) in &cases {
            let cfg = DynamicsConfig {
                rule: *rule,
                max_rounds: 300,
                ..Default::default()
            };
            let reused = engine.run(game, Profile::star(game.n(), 0), &cfg);
            let fresh = run(game, Profile::star(game.n(), 0), &cfg);
            assert_eq!(reused.profile, fresh.profile);
            assert_eq!(reused.outcome, fresh.outcome);
            assert_eq!(reused.moves, fresh.moves);
            assert_eq!(reused.rounds, fresh.rounds);
        }
    }

    #[test]
    fn warm_vectors_match_fresh_dijkstra_through_a_run() {
        // Drive a context through add-only dynamics (insert-only moves
        // keep vectors warm) and check sums against agent_cost_in.
        let game = unit_game(6, 0.4);
        let mut p = Profile::star(6, 0);
        let mut ctx = EvalContext::new(&game, &p);
        for u in 0..6u32 {
            ctx.ensure_warm(u);
        }
        // Agent 1 buys (1,3) and (1,4): insert-only change.
        let old = p.strategy(1).clone();
        let mut s = old.clone();
        s.insert(3);
        s.insert(4);
        p.set_strategy(1, s);
        ctx.apply_strategy_change(&game, &p, 1, &old);
        let network = p.build_network(&game);
        for u in 0..6u32 {
            // Committed inserts sync lazily: a read is ensure_warm + read
            // (the pending-log replay happens here, and its debug oracle
            // re-checks the synced vector against a fresh Dijkstra).
            ctx.ensure_warm(u);
            let expected = gncg_core::cost::agent_cost_in(&game, &p, &network, u).total();
            assert_eq!(ctx.current_cost(&game, &p, u), expected, "agent {u}");
        }
    }

    #[test]
    fn removal_keeps_vectors_exact_under_both_policies() {
        for policy in [RemovalPolicy::DynamicSssp, RemovalPolicy::Invalidate] {
            let game = unit_game(5, 2.0);
            let mut p = Profile::star(5, 0);
            let mut ctx = EvalContext::new(&game, &p);
            ctx.set_removal_policy(policy);
            for u in 0..5u32 {
                ctx.ensure_warm(u);
            }
            // Agent 0 drops (0,1), buys nothing new for 1 — a removal.
            let old = p.strategy(0).clone();
            p.set_strategy(0, [2, 3, 4].into_iter().collect());
            ctx.apply_strategy_change(&game, &p, 0, &old);
            // Dynamic: vectors were repaired in place. Invalidate: they
            // were flagged and ensure_warm recomputes. Either way the
            // costs must match a from-scratch evaluation bitwise.
            let network = p.build_network(&game);
            for u in 0..5u32 {
                ctx.ensure_warm(u);
                let expected = gncg_core::cost::agent_cost_in(&game, &p, &network, u).total();
                assert_eq!(
                    ctx.current_cost(&game, &p, u),
                    expected,
                    "agent {u} under {policy:?}"
                );
            }
        }
    }

    #[test]
    fn degenerate_deltas_are_noops() {
        // apply_delta shares NetworkDelta::apply_to's semantics: removing
        // an absent edge / re-inserting a present one touch nothing —
        // network, warm vectors, and costs all stay exact.
        let game = unit_game(5, 2.0);
        let p = Profile::star(5, 0);
        let mut ctx = EvalContext::new(&game, &p);
        for u in 0..5u32 {
            ctx.ensure_warm(u);
        }
        let m_before = ctx.network().m();
        let mut delta = gncg_graph::NetworkDelta::new();
        delta.remove(1, 2, 1.0); // absent
        delta.insert(0, 1, 1.0); // already present
        ctx.apply_delta(&delta);
        assert_eq!(ctx.network().m(), m_before);
        let network = p.build_network(&game);
        for u in 0..5u32 {
            let expected = gncg_core::cost::agent_cost_in(&game, &p, &network, u).total();
            assert_eq!(ctx.current_cost(&game, &p, u), expected, "agent {u}");
        }
    }

    #[test]
    fn swap_heavy_run_matches_across_policies() {
        // High-α greedy dynamics (swap/delete-heavy rounds): the dynamic
        // removal policy must reproduce the invalidate-and-redo baseline
        // move for move and bit for bit.
        for seed in 0..3u64 {
            let host = gncg_metrics::arbitrary::random_metric(9, 1.0, 4.0, seed);
            let game = Game::new(host, 6.0);
            let cfg = DynamicsConfig {
                max_rounds: 400,
                ..Default::default()
            };
            let mut baseline = Engine::new();
            baseline
                .context_mut()
                .set_removal_policy(RemovalPolicy::Invalidate);
            let a = baseline.run(&game, Profile::star(9, 0), &cfg);
            let b = Engine::new().run(&game, Profile::star(9, 0), &cfg);
            assert_eq!(a.profile, b.profile, "seed {seed}");
            assert_eq!(a.moves, b.moves);
            assert_eq!(a.outcome, b.outcome);
        }
    }

    #[test]
    fn scan_policies_agree_move_for_move() {
        // Full runs under the speculative scan must reproduce the
        // masked-Dijkstra baseline bit for bit — profile, move count,
        // outcome — across rules, schedulers, and α regimes. (Each
        // speculative activation is additionally oracle-checked by a
        // debug assertion inside best_move_among_speculative.)
        for seed in 0..3u64 {
            let host = gncg_metrics::arbitrary::random_metric(9, 1.0, 4.0, seed);
            for alpha in [0.4, 1.5, 6.0] {
                let game = Game::new(host.clone(), alpha);
                for rule in [ResponseRule::BestGreedyMove, ResponseRule::AddOnly] {
                    for scheduler in [
                        Scheduler::RoundRobin,
                        Scheduler::MaxGain,
                        Scheduler::RandomOrder { seed: 7 },
                    ] {
                        let cfg = DynamicsConfig {
                            rule,
                            scheduler,
                            max_rounds: 400,
                            ..Default::default()
                        };
                        let mut masked = Engine::new();
                        masked
                            .context_mut()
                            .set_scan_policy(ScanPolicy::MaskedDijkstra);
                        let a = masked.run(&game, Profile::star(9, 0), &cfg);
                        let b = Engine::new().run(&game, Profile::star(9, 0), &cfg);
                        assert_eq!(
                            a.profile, b.profile,
                            "seed {seed} α {alpha} {rule:?} {scheduler:?}"
                        );
                        assert_eq!(a.moves, b.moves);
                        assert_eq!(a.outcome, b.outcome);
                    }
                }
            }
        }
    }

    #[test]
    fn stability_check_agrees_across_scan_policies() {
        let host = gncg_metrics::arbitrary::random_metric(7, 1.0, 3.0, 33);
        let game = Game::new(host, 1.8);
        let probe = Profile::star(7, 2);
        for rule in [ResponseRule::BestGreedyMove, ResponseRule::AddOnly] {
            let mut spec_ctx = EvalContext::new(&game, &probe);
            let mut masked_ctx = EvalContext::new(&game, &probe);
            masked_ctx.set_scan_policy(ScanPolicy::MaskedDijkstra);
            for u in 0..7u32 {
                assert_eq!(
                    agent_is_stable_given_current(&game, &probe, &mut spec_ctx, u, rule),
                    agent_is_stable_given_current(&game, &probe, &mut masked_ctx, u, rule),
                    "agent {u} {rule:?}"
                );
            }
        }
    }

    #[test]
    fn multi_edge_replace_batches_removals_exactly() {
        // A BR-style Replace dropping several edges at once exercises the
        // batched remove_edges path in apply_delta; every warm vector
        // must stay bitwise exact (also debug-asserted inside
        // apply_strategy_change).
        let game = unit_game(7, 5.0);
        let mut p = Profile::star(7, 0);
        p.buy(0, 2); // no-op (already owned) guard: keep profile valid
        let mut ctx = EvalContext::new(&game, &p);
        for u in 0..7u32 {
            ctx.ensure_warm(u);
        }
        // Agent 0 drops three leaves and keeps the rest: three removals
        // in one delta.
        let old = p.strategy(0).clone();
        p.set_strategy(0, [1, 2, 3].into_iter().collect());
        ctx.apply_strategy_change(&game, &p, 0, &old);
        let network = p.build_network(&game);
        for u in 0..7u32 {
            ctx.ensure_warm(u);
            let expected = gncg_core::cost::agent_cost_in(&game, &p, &network, u).total();
            assert_eq!(ctx.current_cost(&game, &p, u), expected, "agent {u}");
        }
    }

    #[test]
    fn eval_context_tracks_deltas() {
        let game = unit_game(5, 1.0);
        let mut p = Profile::star(5, 0);
        let mut ctx = EvalContext::new(&game, &p);
        assert_eq!(ctx.network().m(), 4);
        // Agent 1 buys towards 2 and 3; drop nothing.
        let old = p.strategy(1).clone();
        p.set_strategy(1, [2, 3].into_iter().collect());
        ctx.apply_strategy_change(&game, &p, 1, &old);
        assert_eq!(ctx.network().m(), 6);
        assert!(ctx.network().has_edge(1, 2));
        // Agent 0 drops its edge to 1 — but agent 1 does not own (1,0),
        // so the edge disappears.
        let old = p.strategy(0).clone();
        p.set_strategy(0, [2, 3, 4].into_iter().collect());
        ctx.apply_strategy_change(&game, &p, 0, &old);
        assert!(!ctx.network().has_edge(0, 1));
        // Double-ownership: 2 also buys (2,0); 0 dropping (0,2) keeps it.
        let old = p.strategy(2).clone();
        p.buy(2, 0);
        ctx.apply_strategy_change(&game, &p, 2, &old);
        assert!(ctx.network().has_edge(0, 2));
        let old = p.strategy(0).clone();
        p.set_strategy(0, [3, 4].into_iter().collect());
        ctx.apply_strategy_change(&game, &p, 0, &old);
        assert!(ctx.network().has_edge(0, 2), "co-owned edge must survive");
    }

    #[test]
    fn incremental_stability_check_agrees_with_full_certificates() {
        let host = gncg_metrics::arbitrary::random_metric(7, 1.0, 3.0, 21);
        let game = Game::new(host, 1.4);
        let mut engine = Engine::new();
        let r = engine.run(&game, Profile::star(7, 0), &DynamicsConfig::default());
        assert!(r.converged());
        // Every agent of a converged greedy run is incrementally stable,
        // matching the from-scratch certificate.
        let ctx = engine.context_mut();
        let all_stable = (0..7u32).all(|u| {
            agent_is_stable_given_current(&game, &r.profile, ctx, u, ResponseRule::BestGreedyMove)
        });
        assert!(all_stable);
        assert!(gncg_core::equilibrium::is_greedy_equilibrium(
            &game, &r.profile
        ));
        // On an arbitrary profile the incremental verdict agrees with the
        // full one agent by agent, for every rule.
        let probe = Profile::star(7, 3);
        for rule in [
            ResponseRule::ExactBestResponse,
            ResponseRule::BestGreedyMove,
            ResponseRule::AddOnly,
        ] {
            let mut ctx = EvalContext::new(&game, &probe);
            let incremental =
                (0..7u32).all(|u| agent_is_stable_given_current(&game, &probe, &mut ctx, u, rule));
            let full = match rule {
                ResponseRule::ExactBestResponse => {
                    gncg_core::equilibrium::is_nash_equilibrium(&game, &probe)
                }
                ResponseRule::BestGreedyMove => {
                    gncg_core::equilibrium::is_greedy_equilibrium(&game, &probe)
                }
                ResponseRule::AddOnly => {
                    gncg_core::equilibrium::is_add_only_equilibrium(&game, &probe)
                }
            };
            assert_eq!(incremental, full, "{rule:?}");
        }
    }

    #[test]
    fn recycled_engine_matches_fresh_runs() {
        let mut engine = Engine::new();
        let a = Game::new(gncg_metrics::arbitrary::random_metric(6, 1.0, 3.0, 5), 1.1);
        let b = Game::new(gncg_metrics::arbitrary::random_metric(8, 1.0, 2.5, 6), 2.3);
        let cfg = DynamicsConfig::default();
        engine.run(&a, Profile::star(6, 0), &cfg);
        engine.recycle();
        let reused = engine.run(&b, Profile::star(8, 0), &cfg);
        let fresh = run(&b, Profile::star(8, 0), &cfg);
        assert_eq!(reused.profile, fresh.profile);
        assert_eq!(reused.moves, fresh.moves);
    }

    #[test]
    fn regret_meter_is_behaviorally_invisible() {
        // Meter + checkpoints on must reproduce the plain run bit for bit
        // (the scan only warms vectors — bitwise-equal to fresh Dijkstras
        // — and rolls every speculation back).
        for seed in 0..3u64 {
            let host = gncg_metrics::arbitrary::random_metric(8, 1.0, 4.0, seed);
            let game = Game::new(host, 2.0);
            for scheduler in [Scheduler::RoundRobin, Scheduler::MaxGain] {
                let plain_cfg = DynamicsConfig {
                    scheduler,
                    max_rounds: 300,
                    ..Default::default()
                };
                let metered_cfg = DynamicsConfig {
                    regret_meter: true,
                    checkpoint_every: 2,
                    ..plain_cfg
                };
                let plain = run(&game, Profile::star(8, 0), &plain_cfg);
                let metered = run(&game, Profile::star(8, 0), &metered_cfg);
                assert_eq!(plain.profile, metered.profile, "seed {seed} {scheduler:?}");
                assert_eq!(plain.outcome, metered.outcome);
                assert_eq!(plain.moves, metered.moves);
                assert!(plain.regret_series.is_none() && plain.checkpoints.is_none());
            }
        }
    }

    #[test]
    fn converged_run_ends_with_exactly_zero_regret() {
        for seed in 0..4u64 {
            let host = gncg_metrics::arbitrary::random_metric(7, 1.0, 3.0, seed);
            let game = Game::new(host, 1.5);
            let r = run(
                &game,
                Profile::star(7, 0),
                &DynamicsConfig {
                    regret_meter: true,
                    max_rounds: 400,
                    ..Default::default()
                },
            );
            let series = r.regret_series.as_ref().expect("meter on");
            assert_eq!(series.len(), r.rounds, "one entry per completed round");
            if r.converged() {
                assert_eq!(series.last(), Some(&0.0), "silent round certifies NE");
            }
            // Regrets are never negative: an improving change improves.
            assert!(series.iter().all(|&g| g >= 0.0));
        }
    }

    #[test]
    fn checkpoints_follow_the_cadence_and_include_the_final_round() {
        let game = unit_game(6, 0.4); // add-heavy: several rounds of moves
        let r = run(
            &game,
            Profile::star(6, 0),
            &DynamicsConfig {
                rule: ResponseRule::AddOnly,
                checkpoint_every: 1,
                ..Default::default()
            },
        );
        assert!(r.converged());
        let frames = r.checkpoints.as_ref().expect("checkpoints on");
        assert_eq!(frames.len(), r.rounds, "cadence 1 → one frame per round");
        let last = frames.last().unwrap();
        assert_eq!(last.round + 1, r.rounds);
        // The final frame snapshots the returned profile exactly, with
        // all-zero regrets (it is the certified equilibrium).
        for (u, s) in last.strategies.iter().enumerate() {
            let expected: Vec<NodeId> = r.profile.strategy(u as NodeId).iter().copied().collect();
            assert_eq!(s, &expected, "agent {u}");
        }
        assert!(last.regrets.iter().all(|&g| g == 0.0));
        let network = r.profile.build_network(&game);
        for u in 0..6u32 {
            let expected = gncg_core::cost::agent_cost_in(&game, &r.profile, &network, u).total();
            assert_eq!(last.costs[u as usize], expected, "agent {u} cost");
        }
        // A sparser cadence keeps every k-th frame plus the final one.
        let sparse = run(
            &game,
            Profile::star(6, 0),
            &DynamicsConfig {
                rule: ResponseRule::AddOnly,
                checkpoint_every: 2,
                ..Default::default()
            },
        );
        let sparse_frames = sparse.checkpoints.unwrap();
        assert!(sparse_frames
            .iter()
            .all(|f| (f.round + 1) % 2 == 0 || f.round + 1 == sparse.rounds));
        assert_eq!(sparse_frames.last().unwrap().round + 1, sparse.rounds);
    }

    #[test]
    fn meter_agrees_with_stability_certificates() {
        // max regret 0.0 ⇔ every agent is stable under the rule.
        let host = gncg_metrics::arbitrary::random_metric(7, 1.0, 3.0, 11);
        let game = Game::new(host, 1.8);
        for rule in [
            ResponseRule::ExactBestResponse,
            ResponseRule::BestGreedyMove,
            ResponseRule::AddOnly,
        ] {
            for probe in [Profile::star(7, 0), Profile::star(7, 3)] {
                let mut ctx = EvalContext::new(&game, &probe);
                let mut meter = RegretMeter::new();
                let max = meter.measure(&game, &probe, &mut ctx, rule);
                let mut cert_ctx = EvalContext::new(&game, &probe);
                let all_stable = (0..7u32)
                    .all(|u| agent_is_stable_given_current(&game, &probe, &mut cert_ctx, u, rule));
                assert_eq!(max == 0.0, all_stable, "{rule:?}");
                assert_eq!(meter.regrets().len(), 7);
            }
        }
    }

    #[test]
    fn cap_is_respected() {
        let game = unit_game(6, 0.4);
        let r = run(
            &game,
            Profile::star(6, 0),
            &DynamicsConfig {
                max_rounds: 1,
                ..Default::default()
            },
        );
        // One round cannot both apply moves and certify silence.
        assert!(!r.converged());
        assert_eq!(r.rounds, 1);
    }
}
