//! The dynamics run loop.
//!
//! A run repeatedly activates agents (per [`Scheduler`]) and lets each
//! activated agent apply an improving strategy change (per
//! [`ResponseRule`]). The run ends when
//!
//! * a full round passes with no applied move — the profile is an
//!   equilibrium *with respect to the rule's move space* (exact NE for
//!   [`ResponseRule::ExactBestResponse`], GE for
//!   [`ResponseRule::BestGreedyMove`], AE for [`ResponseRule::AddOnly`]),
//! * a profile recurs ([`Outcome::Cycle`]) — a finite-improvement-property
//!   violation witness under deterministic scheduling, or
//! * the round cap is hit ([`Outcome::MaxRoundsReached`]).
//!
//! # Cached-network evaluation
//!
//! Every activation needs the built network `G(s)`. Rebuilding it from the
//! profile per activation is `O(n + m)` redundant work times the length of
//! the run, so the engine maintains one [`EvalContext`]: the network is
//! built once at the start and every accepted move is applied to it as
//! *edge deltas* (the changed agent's dropped edges leave unless co-owned,
//! its new edges enter unless already present). The context is behaviorally
//! invisible — `debug_assert`s re-derive the network from the profile after
//! every applied move, so the equivalence is machine-checked in every
//! debug-mode test run — and the costs produced are bit-identical to
//! rebuild-per-activation evaluation because the same graph is handed to
//! the same solvers.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use gncg_core::response::{
    best_add_move_in_costed, best_greedy_move_in_costed, exact_best_response_in,
};
use gncg_core::{Game, NodeId, Profile};
use gncg_graph::AdjacencyList;

use crate::cycle::{CycleDetector, Recurrence};
use crate::trace::{Trace, TraceEntry};

/// Which deviation space activated agents search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResponseRule {
    /// Exact best response (exponential per activation; small `n`).
    ExactBestResponse,
    /// Best single add / delete / swap (polynomial; converges to GE).
    BestGreedyMove,
    /// Best single addition (polynomial; converges to AE).
    AddOnly,
}

/// Agent activation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduler {
    /// `0, 1, …, n-1` every round (deterministic — recurrences certify
    /// genuine cycles).
    RoundRobin,
    /// A fresh uniformly random permutation each round.
    RandomOrder {
        /// RNG seed.
        seed: u64,
    },
    /// Each round activates only the agent with the largest available
    /// improvement (deterministic; ties break towards the smaller id).
    MaxGain,
}

/// Run configuration.
#[derive(Clone, Copy, Debug)]
pub struct DynamicsConfig {
    /// Deviation space.
    pub rule: ResponseRule,
    /// Activation order.
    pub scheduler: Scheduler,
    /// Maximum rounds before giving up.
    pub max_rounds: usize,
    /// Whether to record a [`Trace`].
    pub record_trace: bool,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        DynamicsConfig {
            rule: ResponseRule::BestGreedyMove,
            scheduler: Scheduler::RoundRobin,
            max_rounds: 1_000,
            record_trace: false,
        }
    }
}

/// Why a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// A full round was silent: equilibrium w.r.t. the rule's move space.
    Converged {
        /// Rounds executed (including the final silent round).
        rounds: usize,
    },
    /// A previously seen profile recurred.
    Cycle {
        /// The recurrence.
        recurrence: Recurrence,
    },
    /// The cap was reached without convergence or recurrence.
    MaxRoundsReached,
}

/// Result of a dynamics run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Final profile.
    pub profile: Profile,
    /// Why the run ended.
    pub outcome: Outcome,
    /// Total applied moves.
    pub moves: usize,
    /// Optional per-move trace.
    pub trace: Option<Trace>,
}

impl RunResult {
    /// Whether the run ended in a certified equilibrium.
    pub fn converged(&self) -> bool {
        matches!(self.outcome, Outcome::Converged { .. })
    }
}

/// An improving strategy change: the new strategy plus the agent's cost
/// before and after it.
type Change = (std::collections::BTreeSet<NodeId>, f64, f64);

/// The built network `G(s)`, cached across a run and maintained under
/// strategy changes as edge deltas.
#[derive(Clone, Debug)]
pub struct EvalContext {
    network: AdjacencyList,
}

impl EvalContext {
    /// Builds the context (one full network construction).
    pub fn new(game: &Game, profile: &Profile) -> Self {
        EvalContext {
            network: profile.build_network(game),
        }
    }

    /// The current network.
    #[inline]
    pub fn network(&self) -> &AdjacencyList {
        &self.network
    }

    /// Applies agent `u`'s strategy change as edge deltas. `profile` must
    /// already hold `u`'s *new* strategy; `old` is the strategy it
    /// replaced. An edge leaves only when its other endpoint does not also
    /// own it, and enters only when it is not already present.
    pub fn apply_strategy_change(
        &mut self,
        game: &Game,
        profile: &Profile,
        u: NodeId,
        old: &std::collections::BTreeSet<NodeId>,
    ) {
        let new = profile.strategy(u);
        for &v in old.difference(new) {
            if !profile.owns(v, u) {
                self.network.remove_edge(u, v);
            }
        }
        for &v in new.difference(old) {
            if !self.network.has_edge(u, v) {
                self.network.add_edge(u, v, game.w(u, v));
            }
        }
        #[cfg(debug_assertions)]
        {
            let rebuilt = profile.build_network(game);
            let mut a: Vec<_> = self.network.edges().collect();
            let mut b: Vec<_> = rebuilt.edges().collect();
            a.sort_by_key(|e| (e.0, e.1));
            b.sort_by_key(|e| (e.0, e.1));
            debug_assert_eq!(a, b, "EvalContext delta drifted from the rebuilt network");
        }
    }
}

/// Runs the dynamics from `start` on `game`.
pub fn run(game: &Game, start: Profile, cfg: &DynamicsConfig) -> RunResult {
    let n = game.n();
    let mut profile = start;
    let mut ctx = EvalContext::new(game, &profile);
    let mut detector = CycleDetector::new();
    detector.observe(&profile);
    let mut rng = match cfg.scheduler {
        Scheduler::RandomOrder { seed } => Some(StdRng::seed_from_u64(seed)),
        _ => None,
    };
    let mut trace = if cfg.record_trace {
        Some(Trace::default())
    } else {
        None
    };
    let mut moves = 0usize;

    for round in 0..cfg.max_rounds {
        let mut moved_this_round = false;
        // MaxGain computes each agent's change while scanning; reuse the
        // winner's instead of recomputing it after scheduling.
        let scheduled: Vec<(NodeId, Option<Change>)> = match cfg.scheduler {
            Scheduler::RoundRobin => (0..n as NodeId).map(|u| (u, None)).collect(),
            Scheduler::RandomOrder { .. } => {
                let mut v: Vec<NodeId> = (0..n as NodeId).collect();
                v.shuffle(rng.as_mut().expect("rng set for RandomOrder"));
                v.into_iter().map(|u| (u, None)).collect()
            }
            Scheduler::MaxGain => match max_gain_change(game, &profile, &ctx, cfg.rule) {
                Some((u, change)) => vec![(u, Some(change))],
                None => Vec::new(),
            },
        };
        for (u, precomputed) in scheduled {
            let change = match precomputed {
                Some(c) => Some(c),
                None => improving_change(game, &profile, &ctx, u, cfg.rule),
            };
            if let Some((new_strategy, before, after)) = change {
                let old = profile.strategy(u).clone();
                profile.set_strategy(u, new_strategy);
                ctx.apply_strategy_change(game, &profile, u, &old);
                moves += 1;
                moved_this_round = true;
                if let Some(t) = trace.as_mut() {
                    t.entries.push(TraceEntry {
                        round,
                        agent: u,
                        cost_before: before,
                        cost_after: after,
                        strategy_size: profile.strategy(u).len(),
                    });
                }
                if let Some(rec) = detector.observe(&profile) {
                    return RunResult {
                        profile,
                        outcome: Outcome::Cycle { recurrence: rec },
                        moves,
                        trace,
                    };
                }
            }
        }
        if !moved_this_round {
            return RunResult {
                profile,
                outcome: Outcome::Converged { rounds: round + 1 },
                moves,
                trace,
            };
        }
    }
    RunResult {
        profile,
        outcome: Outcome::MaxRoundsReached,
        moves,
        trace,
    }
}

/// The improving change of `u` under `rule`, with costs before/after,
/// evaluated against the context's cached network.
fn improving_change(
    game: &Game,
    profile: &Profile,
    ctx: &EvalContext,
    u: NodeId,
    rule: ResponseRule,
) -> Option<Change> {
    let network = ctx.network();
    match rule {
        ResponseRule::ExactBestResponse => {
            let br = exact_best_response_in(game, profile, network, u);
            if br.improves() {
                Some((br.strategy, br.current_cost, br.cost))
            } else {
                None
            }
        }
        ResponseRule::BestGreedyMove => {
            let (before, best) = best_greedy_move_in_costed(game, profile, network, u);
            best.map(|(m, c)| (m.apply(u, profile.strategy(u)), before, c))
        }
        ResponseRule::AddOnly => {
            let (before, best) = best_add_move_in_costed(game, profile, network, u);
            best.map(|(m, c)| (m.apply(u, profile.strategy(u)), before, c))
        }
    }
}

/// The agent with the largest improvement under `rule` together with the
/// improving change itself, so the caller never recomputes it. The scan
/// over agents fans out on the rayon pool; the reduction is deterministic
/// (max gain, ties to the smaller agent id), so the schedule matches the
/// sequential scan exactly.
fn max_gain_change(
    game: &Game,
    profile: &Profile,
    ctx: &EvalContext,
    rule: ResponseRule,
) -> Option<(NodeId, Change)> {
    use rayon::prelude::*;
    let winner = (0..game.n() as NodeId)
        .into_par_iter()
        .filter_map(|u| {
            improving_change(game, profile, ctx, u, rule).map(|(s, before, after)| {
                let gain = if before.is_infinite() && after.is_finite() {
                    f64::INFINITY
                } else {
                    before - after
                };
                (u, gain, (s, before, after))
            })
        })
        .reduce(
            // Sentinel: no agent improves. NodeId::MAX never collides with
            // a real agent (n is far below 2^32).
            || (NodeId::MAX, f64::NEG_INFINITY, Default::default()),
            |a, b| {
                // Strictly-greater keeps the earlier (smaller-id) agent on
                // ties, matching the historical sequential scan.
                if b.1 > a.1 || (b.1 == a.1 && b.0 < a.0) {
                    b
                } else {
                    a
                }
            },
        );
    if winner.0 == NodeId::MAX {
        None
    } else {
        Some((winner.0, winner.2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_graph::SymMatrix;

    fn unit_game(n: usize, alpha: f64) -> Game {
        Game::new(SymMatrix::filled(n, 1.0), alpha)
    }

    #[test]
    fn greedy_dynamics_reach_ge_on_unit_metric() {
        let game = unit_game(6, 2.0);
        let start = Profile::star(6, 0);
        let r = run(&game, start, &DynamicsConfig::default());
        assert!(r.converged());
        assert!(gncg_core::equilibrium::is_greedy_equilibrium(&game, &r.profile));
    }

    #[test]
    fn br_dynamics_from_star_already_stable() {
        let game = unit_game(5, 3.0);
        let r = run(
            &game,
            Profile::star(5, 0),
            &DynamicsConfig {
                rule: ResponseRule::ExactBestResponse,
                ..Default::default()
            },
        );
        assert_eq!(r.moves, 0);
        assert!(r.converged());
        assert!(gncg_core::equilibrium::is_nash_equilibrium(&game, &r.profile));
    }

    #[test]
    fn br_dynamics_converge_on_random_metric() {
        // No guarantee in general (no FIP), but these instances converge;
        // when they do, the result must certify as NE.
        let host = gncg_metrics::arbitrary::random_metric(6, 1.0, 3.0, 4);
        let game = Game::new(host, 1.5);
        let r = run(
            &game,
            Profile::star(6, 1),
            &DynamicsConfig {
                rule: ResponseRule::ExactBestResponse,
                max_rounds: 200,
                ..Default::default()
            },
        );
        if r.converged() {
            assert!(gncg_core::equilibrium::is_nash_equilibrium(&game, &r.profile));
        }
    }

    #[test]
    fn add_only_dynamics_reach_ae() {
        let game = unit_game(7, 0.4);
        let start = Profile::star(7, 0);
        let r = run(
            &game,
            start,
            &DynamicsConfig {
                rule: ResponseRule::AddOnly,
                record_trace: true,
                ..Default::default()
            },
        );
        assert!(r.converged());
        assert!(gncg_core::equilibrium::is_add_only_equilibrium(&game, &r.profile));
        let t = r.trace.expect("trace recorded");
        assert!(t.all_improving());
        assert_eq!(t.moves(), r.moves);
        // α < 1 on unit metric: everyone buys all missing edges.
        let g = r.profile.build_network(&game);
        assert_eq!(g.m(), 21);
    }

    #[test]
    fn max_gain_scheduler_converges() {
        let game = unit_game(5, 2.0);
        let r = run(
            &game,
            Profile::star(5, 2),
            &DynamicsConfig {
                scheduler: Scheduler::MaxGain,
                ..Default::default()
            },
        );
        assert!(r.converged());
    }

    #[test]
    fn max_gain_matches_round_robin_equilibrium_class() {
        // MaxGain must land in the same equilibrium class (certified GE)
        // and its precomputed change must behave like a fresh computation.
        let host = gncg_metrics::arbitrary::random_metric(6, 1.0, 3.0, 13);
        let game = Game::new(host, 1.2);
        let r = run(
            &game,
            Profile::star(6, 0),
            &DynamicsConfig {
                scheduler: Scheduler::MaxGain,
                max_rounds: 500,
                ..Default::default()
            },
        );
        if r.converged() {
            assert!(gncg_core::equilibrium::is_greedy_equilibrium(&game, &r.profile));
        }
    }

    #[test]
    fn random_scheduler_is_seed_deterministic() {
        let host = gncg_metrics::arbitrary::random_metric(6, 1.0, 3.0, 8);
        let game = Game::new(host, 1.0);
        let cfg = DynamicsConfig {
            scheduler: Scheduler::RandomOrder { seed: 5 },
            ..Default::default()
        };
        let a = run(&game, Profile::star(6, 0), &cfg);
        let b = run(&game, Profile::star(6, 0), &cfg);
        assert_eq!(a.profile, b.profile);
        assert_eq!(a.moves, b.moves);
    }

    #[test]
    fn eval_context_tracks_deltas() {
        let game = unit_game(5, 1.0);
        let mut p = Profile::star(5, 0);
        let mut ctx = EvalContext::new(&game, &p);
        assert_eq!(ctx.network().m(), 4);
        // Agent 1 buys towards 2 and 3; drop nothing.
        let old = p.strategy(1).clone();
        p.set_strategy(1, [2, 3].into_iter().collect());
        ctx.apply_strategy_change(&game, &p, 1, &old);
        assert_eq!(ctx.network().m(), 6);
        assert!(ctx.network().has_edge(1, 2));
        // Agent 0 drops its edge to 1 — but agent 1 does not own (1,0),
        // so the edge disappears.
        let old = p.strategy(0).clone();
        p.set_strategy(0, [2, 3, 4].into_iter().collect());
        ctx.apply_strategy_change(&game, &p, 0, &old);
        assert!(!ctx.network().has_edge(0, 1));
        // Double-ownership: 2 also buys (2,0); 0 dropping (0,2) keeps it.
        let old = p.strategy(2).clone();
        p.buy(2, 0);
        ctx.apply_strategy_change(&game, &p, 2, &old);
        assert!(ctx.network().has_edge(0, 2));
        let old = p.strategy(0).clone();
        p.set_strategy(0, [3, 4].into_iter().collect());
        ctx.apply_strategy_change(&game, &p, 0, &old);
        assert!(ctx.network().has_edge(0, 2), "co-owned edge must survive");
    }

    #[test]
    fn cap_is_respected() {
        let game = unit_game(6, 0.4);
        let r = run(
            &game,
            Profile::star(6, 0),
            &DynamicsConfig {
                max_rounds: 1,
                ..Default::default()
            },
        );
        // One round cannot both apply moves and certify silence.
        assert!(!r.converged());
    }
}
