//! # gncg-dynamics
//!
//! (Best-)response dynamics for the GNCG.
//!
//! The paper proves that none of its model variants has the finite
//! improvement property (Corollary 1, Theorems 14 and 17): improving-move
//! sequences can cycle forever, so the engine here combines capped
//! iteration with *profile-recurrence* cycle detection and only reports an
//! equilibrium when a full silent round certifies it.
//!
//! * [`engine`] — the run loop: response rules × schedulers,
//! * [`cycle`] — profile hashing and recurrence detection,
//! * [`trace`] — per-move records of a run,
//! * [`parallel`] — rayon-parallel batch sweeps over seeds and α grids.

pub mod cycle;
pub mod engine;
pub mod parallel;
pub mod simultaneous;
pub mod stats;
pub mod trace;

pub use engine::{
    agent_is_stable_given_current, run, BrCachePolicy, Checkpoint, DynamicsConfig, Engine,
    EvalContext, Outcome, RegretMeter, RemovalPolicy, ResponseRule, RunResult, ScanPolicy,
    Scheduler,
};
pub use gncg_core::{BrBoundCache, SpeculativePricing, BR_STALENESS_BUDGET, PRICE_HORIZON};
