//! Simultaneous-move response dynamics.
//!
//! In the sequential engine ([`crate::engine`]) one agent moves at a time.
//! Real decentralized systems often update concurrently: every round,
//! *all* agents compute a response against the current network and apply
//! them at once. Simultaneous best responses are well known to oscillate
//! even on instances where sequential dynamics converge (coordination
//! failure: two agents both buy, or both drop, the same connectivity) —
//! this module provides the engine and the comparison experiment.

use std::collections::BTreeSet;

use gncg_core::response::{best_greedy_move_in, exact_best_response_in};
use gncg_core::{Game, NodeId, Profile};

use crate::cycle::{CycleDetector, Recurrence};
use crate::engine::ResponseRule;

/// Outcome of a simultaneous-dynamics run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimOutcome {
    /// No agent changed its strategy in some round.
    Converged {
        /// Rounds executed including the silent one.
        rounds: usize,
    },
    /// A profile recurred (oscillation certified).
    Cycle {
        /// The recurrence.
        recurrence: Recurrence,
    },
    /// Cap reached.
    MaxRoundsReached,
}

/// Result of a simultaneous run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Final profile.
    pub profile: Profile,
    /// Outcome.
    pub outcome: SimOutcome,
    /// Total strategy changes applied.
    pub moves: usize,
}

/// Runs simultaneous dynamics: each round every agent computes its
/// response against the *current* profile; all changes apply at once.
pub fn run_simultaneous(
    game: &Game,
    start: Profile,
    rule: ResponseRule,
    max_rounds: usize,
) -> SimResult {
    let n = game.n();
    let mut profile = start;
    let mut detector = CycleDetector::new();
    detector.observe(&profile);
    let mut moves = 0usize;
    for round in 0..max_rounds {
        // All agents respond to the same snapshot, so one network build
        // serves the whole round (this is exactly the simultaneous-move
        // semantics: nobody sees anyone else's in-flight change).
        let network = profile.build_network(game);
        let mut changes: Vec<(NodeId, BTreeSet<NodeId>)> = Vec::new();
        for u in 0..n as NodeId {
            match rule {
                ResponseRule::ExactBestResponse => {
                    let br = exact_best_response_in(game, &profile, &network, u);
                    if br.improves() {
                        changes.push((u, br.strategy));
                    }
                }
                ResponseRule::BestGreedyMove => {
                    if let Some((m, _)) = best_greedy_move_in(game, &profile, &network, u) {
                        changes.push((u, m.apply(u, profile.strategy(u))));
                    }
                }
                ResponseRule::AddOnly => {
                    if let Some((m, _)) =
                        gncg_core::response::best_add_move_in(game, &profile, &network, u)
                    {
                        changes.push((u, m.apply(u, profile.strategy(u))));
                    }
                }
            }
        }
        if changes.is_empty() {
            return SimResult {
                profile,
                outcome: SimOutcome::Converged { rounds: round + 1 },
                moves,
            };
        }
        for (u, s) in changes {
            profile.set_strategy(u, s);
            moves += 1;
        }
        if let Some(rec) = detector.observe(&profile) {
            return SimResult {
                profile,
                outcome: SimOutcome::Cycle { recurrence: rec },
                moves,
            };
        }
    }
    SimResult {
        profile,
        outcome: SimOutcome::MaxRoundsReached,
        moves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_graph::SymMatrix;

    #[test]
    fn stable_start_stays() {
        // A certified NE start converges in one silent round.
        let game = Game::new(SymMatrix::filled(5, 1.0), 3.0);
        let r = run_simultaneous(
            &game,
            Profile::star(5, 0),
            ResponseRule::ExactBestResponse,
            50,
        );
        assert_eq!(r.outcome, SimOutcome::Converged { rounds: 1 });
        assert_eq!(r.moves, 0);
    }

    #[test]
    fn simultaneous_oscillation_on_two_agents() {
        // Two disconnected agents both want the single edge: sequentially
        // one buys and the other stops; simultaneously both buy, then both
        // (owning a redundant double-bought edge) drop — a classic
        // coordination cycle. (Whether it cycles or converges depends on
        // tie-breaking; the run must terminate with *some* decisive
        // outcome and never exceed the cap silently.)
        let game = Game::new(SymMatrix::filled(2, 0.5), 0.5);
        let r = run_simultaneous(
            &game,
            Profile::empty(2),
            ResponseRule::ExactBestResponse,
            40,
        );
        match r.outcome {
            SimOutcome::Cycle { recurrence } => assert!(recurrence.period() >= 1),
            SimOutcome::Converged { .. } => {
                // If it converged the result must be a genuine NE.
                assert!(gncg_core::equilibrium::is_nash_equilibrium(
                    &game, &r.profile
                ));
            }
            SimOutcome::MaxRoundsReached => {}
        }
    }

    #[test]
    fn simultaneous_add_only_reaches_ae_on_unit_metric() {
        // Add-only simultaneous updates cannot un-buy, so they converge.
        let game = Game::new(SymMatrix::filled(6, 0.4), 0.4);
        let r = run_simultaneous(&game, Profile::star(6, 0), ResponseRule::AddOnly, 100);
        assert!(matches!(r.outcome, SimOutcome::Converged { .. }));
        assert!(gncg_core::equilibrium::is_add_only_equilibrium(
            &game, &r.profile
        ));
    }

    #[test]
    fn sequential_converges_where_simultaneous_may_not() {
        // On a metric instance, compare engines from the same start.
        let host = gncg_metrics::arbitrary::random_metric(6, 1.0, 3.0, 2);
        let game = Game::new(host, 1.0);
        let seq = crate::engine::run(
            &game,
            Profile::star(6, 0),
            &crate::engine::DynamicsConfig {
                rule: ResponseRule::BestGreedyMove,
                scheduler: crate::engine::Scheduler::RoundRobin,
                max_rounds: 300,
                ..crate::engine::DynamicsConfig::default()
            },
        );
        assert!(seq.converged());
        // The simultaneous run must terminate decisively within the cap
        // too (either converging or certifying a cycle) on this instance.
        let sim = run_simultaneous(
            &game,
            Profile::star(6, 0),
            ResponseRule::BestGreedyMove,
            300,
        );
        assert!(!matches!(sim.outcome, SimOutcome::MaxRoundsReached));
    }
}
