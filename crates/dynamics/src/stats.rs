//! Aggregate statistics over sweep batches: convergence behavior, social
//! cost distributions, and ratio summaries for the experiment harness.

use crate::engine::Outcome;
use crate::parallel::SweepPoint;

/// Summary of a batch of dynamics runs.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepSummary {
    /// Number of points.
    pub runs: usize,
    /// Fraction that converged.
    pub convergence_rate: f64,
    /// Number of runs that ended in a detected cycle.
    pub cycles: usize,
    /// Number of runs that hit the round cap.
    pub capped: usize,
    /// Mean applied moves per run.
    pub mean_moves: f64,
    /// Mean rounds-to-convergence over converged runs (0 if none).
    pub mean_rounds: f64,
    /// Minimum / mean / maximum social cost over all points.
    pub social_cost: MinMeanMax,
}

/// A (min, mean, max) triple.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MinMeanMax {
    /// Smallest observed value.
    pub min: f64,
    /// Mean value.
    pub mean: f64,
    /// Largest observed value.
    pub max: f64,
}

impl MinMeanMax {
    /// Summarizes a non-empty iterator; returns NaN-free zeros when empty.
    pub fn of(values: impl IntoIterator<Item = f64>) -> MinMeanMax {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut count = 0usize;
        for v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
            count += 1;
        }
        if count == 0 {
            MinMeanMax {
                min: 0.0,
                mean: 0.0,
                max: 0.0,
            }
        } else {
            MinMeanMax {
                min,
                mean: sum / count as f64,
                max,
            }
        }
    }
}

/// Summarizes a sweep batch.
pub fn summarize(points: &[SweepPoint]) -> SweepSummary {
    let runs = points.len();
    let mut cycles = 0usize;
    let mut capped = 0usize;
    let mut converged = 0usize;
    let mut rounds_sum = 0usize;
    for p in points {
        match p.result.outcome {
            Outcome::Converged { rounds } => {
                converged += 1;
                rounds_sum += rounds;
            }
            Outcome::Cycle { .. } => cycles += 1,
            Outcome::MaxRoundsReached => capped += 1,
        }
    }
    SweepSummary {
        runs,
        convergence_rate: if runs == 0 {
            1.0
        } else {
            converged as f64 / runs as f64
        },
        cycles,
        capped,
        mean_moves: if runs == 0 {
            0.0
        } else {
            points.iter().map(|p| p.result.moves as f64).sum::<f64>() / runs as f64
        },
        mean_rounds: if converged == 0 {
            0.0
        } else {
            rounds_sum as f64 / converged as f64
        },
        social_cost: MinMeanMax::of(points.iter().map(|p| p.social_cost)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DynamicsConfig, ResponseRule, Scheduler};
    use gncg_core::Profile;

    #[test]
    fn min_mean_max_basics() {
        let m = MinMeanMax::of([2.0, 4.0, 6.0]);
        assert_eq!(m.min, 2.0);
        assert_eq!(m.mean, 4.0);
        assert_eq!(m.max, 6.0);
        let empty = MinMeanMax::of(std::iter::empty());
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    fn summarize_sweep() {
        let hosts = vec![
            gncg_metrics::unit::unit_host(5),
            gncg_metrics::onetwo::random(5, 0.5, 1),
        ];
        let cfg = DynamicsConfig {
            rule: ResponseRule::BestGreedyMove,
            scheduler: Scheduler::RoundRobin,
            max_rounds: 200,
            ..DynamicsConfig::default()
        };
        let points = crate::parallel::sweep(&hosts, &[1.0, 2.0], &cfg, |_, n| Profile::star(n, 0));
        let s = summarize(&points);
        assert_eq!(s.runs, 4);
        assert_eq!(
            s.cycles + s.capped + (s.convergence_rate * 4.0).round() as usize,
            4
        );
        assert!(s.social_cost.min <= s.social_cost.mean);
        assert!(s.social_cost.mean <= s.social_cost.max);
        assert!(s.mean_moves >= 0.0);
    }

    #[test]
    fn empty_batch() {
        let s = summarize(&[]);
        assert_eq!(s.runs, 0);
        assert_eq!(s.convergence_rate, 1.0);
    }
}
