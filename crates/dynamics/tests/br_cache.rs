//! Equivalence of the persistent BR bound tables ([`BrBoundCache`],
//! `BrCachePolicy::Cached`) with rebuild-every-activation pricing
//! (`BrCachePolicy::Rebuild`).
//!
//! The cached tables are delta-maintained through arbitrary interleaved
//! insert / remove / swap strategy changes, and past the staleness budget
//! they rebuild outright — in every state the chosen best response and
//! its cost must be **bitwise identical** to a fresh `BrSearch`. These
//! tests drive the public engine surface; the per-node guarantees (bound
//! admissibility at every pruned node, bitwise `d0`, lock-step base
//! graph) are asserted *inside* every cached search by the
//! `debug_assertions` oracle in `BrBoundCache::best_response`, which is
//! active in these test builds — each probe below therefore also runs
//! the full per-node admissibility check.

use std::collections::BTreeSet;

use proptest::prelude::*;

use gncg_core::{Game, NodeId, Profile};
use gncg_dynamics::engine::{
    agent_is_stable_given_current, BrCachePolicy, DynamicsConfig, Engine, EvalContext,
    ResponseRule, Scheduler,
};
use gncg_dynamics::BR_STALENESS_BUDGET;

const RULE: ResponseRule = ResponseRule::ExactBestResponse;

/// A game on one of the nine registered factory hosts.
fn factory_game(n: usize) -> impl Strategy<Value = Game> {
    let hosts = gncg_metrics::factory::keys();
    let count = hosts.len();
    (0usize..count, (0u64..1 << 12), 0usize..3).prop_map(move |(host, seed, regime)| {
        let alpha = [0.3, 1.5, 8.0][regime];
        let host = gncg_metrics::build_host(hosts[host], n, seed).expect("registry key");
        Game::new(host, alpha)
    })
}

/// A connected-ish random start: a star plus extra purchases.
fn start_profile(n: usize) -> impl Strategy<Value = Profile> {
    (
        0u32..n as u32,
        proptest::collection::vec(proptest::bool::weighted(0.25), n * n),
    )
        .prop_map(move |(center, bits)| {
            let mut p = Profile::star(n, center);
            for u in 0..n {
                for v in 0..n {
                    if u != v && bits[u * n + v] && !p.has_edge(u as NodeId, v as NodeId) {
                        p.buy(u as NodeId, v as NodeId);
                    }
                }
            }
            p
        })
}

/// A script of raw strategy overwrites: each step assigns agent `a` the
/// strategy encoded by `mask` (bit `v` ⇒ own `(a, v)`), which against the
/// previous strategy is an arbitrary interleaving of edge insertions,
/// removals, and swaps — including ownership flips of co-owned edges.
fn script(n: usize, steps: usize) -> impl Strategy<Value = Vec<(u32, u32, u32)>> {
    proptest::collection::vec((0u32..n as u32, 0u32..1 << n, 0u32..n as u32), steps)
}

fn decode_strategy(a: NodeId, mask: u32, n: usize) -> BTreeSet<NodeId> {
    (0..n as NodeId)
        .filter(|&v| v != a && mask & (1 << v) != 0)
        .collect()
}

/// Applies one script step to `profile` + `ctx` the way the run loop
/// commits moves: profile first, then the context delta.
fn commit(
    game: &Game,
    profile: &mut Profile,
    ctx: &mut EvalContext,
    a: NodeId,
    s: BTreeSet<NodeId>,
) {
    let old = profile.strategy(a).clone();
    profile.set_strategy(a, s);
    ctx.apply_strategy_change(game, profile, a, &old);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cached-bound BR ≡ fresh-rebuild BR across all nine factory hosts
    /// under random interleaved insert/remove/swap deltas. Stability
    /// verdicts must agree step for step between a `Cached` and a
    /// `Rebuild` context evolved through the identical move sequence
    /// (and every cached probe self-checks bitwise against a fresh
    /// `BrSearch` via the debug oracle).
    #[test]
    fn cached_br_matches_rebuild_under_interleaved_deltas(
        g in factory_game(8),
        p0 in start_profile(8),
        steps in script(8, 12),
    ) {
        let n = 8usize;
        let mut profile = p0;
        let mut cached = EvalContext::new(&g, &profile);
        prop_assert_eq!(cached.br_policy(), BrCachePolicy::Cached);
        let mut rebuild = EvalContext::new(&g, &profile);
        rebuild.set_br_policy(BrCachePolicy::Rebuild);
        for &(a, mask, probe) in &steps {
            let s = decode_strategy(a, mask, n);
            let old = profile.strategy(a).clone();
            profile.set_strategy(a, s);
            cached.apply_strategy_change(&g, &profile, a, &old);
            rebuild.apply_strategy_change(&g, &profile, a, &old);
            let want = agent_is_stable_given_current(&g, &profile, &mut rebuild, probe, RULE);
            let got = agent_is_stable_given_current(&g, &profile, &mut cached, probe, RULE);
            prop_assert_eq!(got, want, "agent {} stability diverged", probe);
        }
        // Final sweep: every agent's verdict agrees (every cache that was
        // built replays its whole pending history here).
        for u in 0..n as NodeId {
            let want = agent_is_stable_given_current(&g, &profile, &mut rebuild, u, RULE);
            let got = agent_is_stable_given_current(&g, &profile, &mut cached, u, RULE);
            prop_assert_eq!(got, want, "agent {} stability diverged in final sweep", u);
        }
    }

    /// Full BR-rule dynamics runs are bitwise identical under both
    /// policies: same final profile, same outcome, same move count, for
    /// every scheduler.
    #[test]
    fn br_dynamics_identical_under_both_policies(
        g in factory_game(7),
        p0 in start_profile(7),
        sched in 0usize..3,
    ) {
        let scheduler = [
            Scheduler::RoundRobin,
            Scheduler::RandomOrder { seed: 7 },
            Scheduler::MaxGain,
        ][sched];
        let cfg = DynamicsConfig {
            rule: RULE,
            scheduler,
            max_rounds: 40,
            regret_meter: true,
            ..Default::default()
        };
        let mut cached_engine = Engine::new();
        let cached = cached_engine.run(&g, p0.clone(), &cfg);
        let mut rebuild_engine = Engine::new();
        rebuild_engine.context_mut().set_br_policy(BrCachePolicy::Rebuild);
        let rebuild = rebuild_engine.run(&g, p0, &cfg);
        prop_assert_eq!(cached.outcome, rebuild.outcome);
        prop_assert_eq!(cached.rounds, rebuild.rounds);
        prop_assert_eq!(cached.moves, rebuild.moves);
        for u in 0..g.n() as NodeId {
            prop_assert_eq!(cached.profile.strategy(u), rebuild.profile.strategy(u));
        }
        let (a, b) = (cached.regret_series.unwrap(), rebuild.regret_series.unwrap());
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "regret series diverged");
        }
    }
}

/// Drives a single agent's cache past the staleness-rebuild threshold:
/// `BR_STALENESS_BUDGET + 1` distinct removals land between two of its
/// activations, each absorbed as an admissible phantom edge, and the next
/// activation rebuilds the tables outright. Probes on both sides of the
/// threshold self-check bitwise against a fresh search (debug oracle).
#[test]
fn staleness_budget_triggers_rebuild() {
    let extra = BR_STALENESS_BUDGET + 1;
    let n = extra + 2; // agents 1..=extra+1 each buy one chain edge
    let host = gncg_metrics::build_host("unit", n, 0).expect("unit host");
    let g = Game::new(host, 1.2);
    let mut profile = Profile::star(n, 0);
    for i in 1..=extra as NodeId {
        profile.buy(i, i + 1);
    }
    let mut ctx = EvalContext::new(&g, &profile);

    // First activation of agent 0 builds its tables.
    agent_is_stable_given_current(&g, &profile, &mut ctx, 0, RULE);
    let cache = ctx.br_cache(0).expect("cache built on first BR activation");
    assert!(cache.is_built());
    assert_eq!(cache.stale_removals(), 0);

    // Every chain owner drops its extra edge — none incident to agent 0,
    // so each removal goes stale-admissible instead of being repaired.
    for i in 1..=extra as NodeId {
        let mut s = profile.strategy(i).clone();
        assert!(s.remove(&(i + 1)));
        commit(&g, &mut profile, &mut ctx, i, s);
        assert_eq!(
            ctx.br_cache(0).unwrap().stale_removals(),
            i as usize,
            "each removal must add exactly one phantom edge"
        );
    }
    assert!(ctx.br_cache(0).unwrap().stale_removals() > BR_STALENESS_BUDGET);

    // The next activation crosses the budget: full rebuild, zero
    // staleness, and a verdict matching a from-scratch context.
    let got = agent_is_stable_given_current(&g, &profile, &mut ctx, 0, RULE);
    assert_eq!(ctx.br_cache(0).unwrap().stale_removals(), 0);
    let mut fresh = EvalContext::new(&g, &profile);
    fresh.set_br_policy(BrCachePolicy::Rebuild);
    let want = agent_is_stable_given_current(&g, &profile, &mut fresh, 0, RULE);
    assert_eq!(got, want);
}

/// Re-probing an agent with zero intervening deltas returns the
/// memoized result (observable via `memo_is_warm`; in these debug
/// builds every hit is still oracle-checked against a fresh search),
/// and any committed delta kills the memo of every other agent's cache.
/// Verdicts match a rebuild baseline throughout.
#[test]
fn repeat_probes_memoize_until_a_delta_lands() {
    let n = 9usize;
    let host = gncg_metrics::build_host("metric", n, 5).expect("metric host");
    let g = Game::new(host, 1.3);
    let mut profile = Profile::star(n, 0);
    let mut ctx = EvalContext::new(&g, &profile);
    let mut baseline = EvalContext::new(&g, &profile);
    baseline.set_br_policy(BrCachePolicy::Rebuild);

    // Two identical sweeps: the second is all memo hits.
    for _ in 0..2 {
        for u in 0..n as NodeId {
            let got = agent_is_stable_given_current(&g, &profile, &mut ctx, u, RULE);
            let want = agent_is_stable_given_current(&g, &profile, &mut baseline, u, RULE);
            assert_eq!(got, want);
        }
    }
    for u in 0..n as NodeId {
        assert!(ctx.br_cache(u).unwrap().memo_is_warm());
    }

    // One committed purchase: every *other* agent's memo dies on the
    // spot (the mover's own survives until its next probe, where the
    // changed strategy misses it), and verdicts keep matching.
    let mut s = profile.strategy(3).clone();
    s.insert(7);
    let old = profile.strategy(3).clone();
    profile.set_strategy(3, s);
    ctx.apply_strategy_change(&g, &profile, 3, &old);
    baseline.apply_strategy_change(&g, &profile, 3, &old);
    for u in 0..n as NodeId {
        if u != 3 {
            assert!(
                !ctx.br_cache(u).unwrap().memo_is_warm(),
                "agent {u}'s memo must die with the committed insert"
            );
        }
    }
    for u in 0..n as NodeId {
        let got = agent_is_stable_given_current(&g, &profile, &mut ctx, u, RULE);
        let want = agent_is_stable_given_current(&g, &profile, &mut baseline, u, RULE);
        assert_eq!(got, want, "agent {u} diverged after the memo-killing delta");
        assert!(ctx.br_cache(u).unwrap().memo_is_warm());
    }
}

/// Under the budget, removals stay stale (weaker pruning, never a wrong
/// answer): probes keep matching the rebuild baseline while phantoms are
/// live, without triggering a rebuild.
#[test]
fn stale_bounds_stay_admissible_under_budget() {
    let n = 10usize;
    let host = gncg_metrics::build_host("metric", n, 3).expect("metric host");
    let g = Game::new(host, 1.0);
    let mut profile = Profile::star(n, 0);
    for i in 1..6 as NodeId {
        profile.buy(i, i + 1);
    }
    let mut ctx = EvalContext::new(&g, &profile);
    let mut baseline = EvalContext::new(&g, &profile);
    baseline.set_br_policy(BrCachePolicy::Rebuild);

    // Build every agent's tables once.
    for u in 0..n as NodeId {
        let got = agent_is_stable_given_current(&g, &profile, &mut ctx, u, RULE);
        let want = agent_is_stable_given_current(&g, &profile, &mut baseline, u, RULE);
        assert_eq!(got, want);
    }
    // Three removals, probing after each: the phantoms stay resident.
    for i in 1..4 as NodeId {
        let mut s = profile.strategy(i).clone();
        assert!(s.remove(&(i + 1)));
        let old = profile.strategy(i).clone();
        profile.set_strategy(i, s);
        ctx.apply_strategy_change(&g, &profile, i, &old);
        baseline.apply_strategy_change(&g, &profile, i, &old);
        for u in 0..n as NodeId {
            let got = agent_is_stable_given_current(&g, &profile, &mut ctx, u, RULE);
            let want = agent_is_stable_given_current(&g, &profile, &mut baseline, u, RULE);
            assert_eq!(got, want, "agent {u} diverged with phantoms live");
        }
        // Probed caches of non-movers kept the removal stale, not repaired.
        assert!(ctx.br_cache(0).unwrap().stale_removals() as u32 >= i - 1);
    }
}
