//! Experiment E21 and general-host checks (Section 4, Theorem 20).

use gncg_constructions::three_cycle;
use gncg_core::cost::social_cost;
use gncg_core::equilibrium::is_nash_equilibrium;
use gncg_core::poa;
use gncg_core::Game;

/// Theorem 20's technique gap: σ = ((α+2)/2)² on the heavy pair while the
/// true ratio is (α+2)/2 — across an α grid.
#[test]
fn theorem20_gap_instance_grid() {
    for alpha in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let g = three_cycle::game(alpha);
        assert!(
            is_nash_equilibrium(&g, &three_cycle::ne_profile()),
            "α={alpha}"
        );
        let r = social_cost(&g, &three_cycle::ne_profile())
            / social_cost(&g, &three_cycle::opt_profile());
        assert!((r - three_cycle::true_ratio(alpha)).abs() < 1e-9);
        let sigma = three_cycle::sigma(alpha);
        assert!((sigma - poa::general_upper_bound(alpha)).abs() < 1e-9);
        assert!(r < sigma);
    }
}

/// Theorem 20 upper bound: certified NEs on random *non-metric* hosts
/// respect cost(NE)/cost(OPT) ≤ ((α+2)/2)².
#[test]
fn theorem20_upper_bound_random_nonmetric() {
    for seed in 0..4u64 {
        let host = gncg_metrics::arbitrary::random(6, 0.5, 10.0, seed);
        for alpha in [0.5, 1.0, 3.0] {
            let game = Game::new(host.clone(), alpha);
            let run = gncg_suite::br_dynamics_from_star(&game, 0, 200);
            if !run.converged() {
                continue;
            }
            let opt = gncg_solvers::opt_exact::social_optimum(&game);
            let r = social_cost(&game, &run.profile) / opt.cost;
            assert!(
                r <= poa::general_upper_bound(alpha) + 1e-9,
                "seed {seed} α {alpha}: {r}"
            );
        }
    }
}

/// Conjecture 2 probe: on the same random non-metric equilibria, does the
/// *metric* bound (α+2)/2 ever break? (The conjecture says it should not.)
/// This records the empirical status; a violation would be a noteworthy
/// counterexample, so the test asserts the conjecture on the sampled set.
#[test]
fn conjecture2_probe() {
    let mut worst: f64 = 0.0;
    for seed in 0..6u64 {
        let host = gncg_metrics::arbitrary::random(6, 0.5, 5.0, seed);
        for alpha in [0.5, 1.5, 4.0] {
            let game = Game::new(host.clone(), alpha);
            let run = gncg_suite::br_dynamics_from_star(&game, 0, 150);
            if !run.converged() {
                continue;
            }
            let opt = gncg_solvers::opt_exact::social_optimum(&game);
            let r = social_cost(&game, &run.profile) / opt.cost;
            let normalized = r / poa::metric_upper_bound(alpha);
            worst = worst.max(normalized);
        }
    }
    assert!(
        worst <= 1.0 + 1e-9,
        "Conjecture 2 violated on a sampled instance: normalized ratio {worst}"
    );
}

/// 1-∞ hosts (Demaine et al.): equilibria exist on small random connected
/// hosts and respect the general bound relative to the best-found network.
#[test]
fn one_inf_hosts_basic() {
    for seed in 0..3u64 {
        let host = gncg_metrics::oneinf::random_connected(6, 0.3, seed);
        let game = Game::new(host, 2.0);
        let run = gncg_suite::br_dynamics_from_star(&game, 0, 200);
        if !run.converged() {
            continue;
        }
        assert!(is_nash_equilibrium(&game, &run.profile));
        // Built network never uses forbidden (∞) edges.
        let g = run.profile.build_network(&game);
        for (u, v, w) in g.edges() {
            assert!(w.is_finite(), "∞-edge ({u},{v}) bought");
        }
    }
}
