//! Experiment E05: Theorem 3 — the UMFL connection (GE ⇒ 3-NE) and the
//! quality of the UMFL-based polynomial best response.

use gncg_core::equilibrium::nash_approximation_factor;
use gncg_core::{Game, Profile};
use gncg_solvers::umfl;

/// Theorem 3 headline: every Greedy Equilibrium reached by greedy dynamics
/// is a 3-approximate NE.
#[test]
fn theorem3_ge_is_3_ne() {
    for seed in 0..4u64 {
        let host = gncg_metrics::arbitrary::random_metric(7, 1.0, 4.0, seed);
        for alpha in [0.5, 1.0, 2.0] {
            let game = Game::new(host.clone(), alpha);
            let run = gncg_suite::greedy_dynamics_from_star(&game, 0, 500);
            assert!(run.converged(), "seed {seed} α {alpha}");
            let factor = nash_approximation_factor(&game, &run.profile);
            assert!(
                factor <= 3.0 + 1e-9,
                "seed {seed} α {alpha}: GE has Nash factor {factor} > 3"
            );
        }
    }
}

/// The UMFL best response never loses more than a factor 3 against the
/// exact best response, across agents and instances (locality gap 3).
#[test]
fn umfl_br_within_factor_3() {
    for seed in 0..3u64 {
        let host = gncg_metrics::arbitrary::random_metric(7, 1.0, 3.0, seed);
        let game = Game::new(host, 1.0);
        let mut p = Profile::star(7, 0);
        p.buy(2, 5);
        for agent in 0..7u32 {
            let exact = gncg_core::response::exact_best_response(&game, &p, agent);
            let (_, c) = umfl::best_response_umfl(&game, &p, agent);
            assert!(c <= 3.0 * exact.cost + 1e-9, "agent {agent} seed {seed}");
            assert!(c + 1e-9 >= exact.cost);
        }
    }
}

/// The UMFL mapping is cost-faithful for arbitrary current strategies:
/// mapped instance cost of the mapped solution equals the agent's true
/// cost.
#[test]
fn umfl_mapping_faithfulness() {
    let host = gncg_metrics::arbitrary::random_metric(6, 1.0, 4.0, 9);
    let game = Game::new(host, 1.5);
    let mut p = Profile::star(6, 1);
    p.buy(3, 4);
    p.buy(4, 2);
    for agent in 0..6u32 {
        let inst = umfl::game_to_umfl(&game, &p, agent);
        // Map the agent's current strategy to facility indices: forced-open
        // (edges towards the agent) plus its own purchases.
        let others: Vec<u32> = (0..6).filter(|&v| v != agent).collect();
        let mut sol: std::collections::BTreeSet<usize> = inst.forced_open.iter().copied().collect();
        for (i, &v) in others.iter().enumerate() {
            if p.owns(agent, v) {
                sol.insert(i);
            }
        }
        if sol.is_empty() {
            continue; // disconnected strategy: both sides infinite
        }
        let mapped = inst.cost(&sol);
        let real = gncg_core::cost::agent_cost(&game, &p, agent).total();
        assert!(
            gncg_graph::approx_eq(mapped, real),
            "agent {agent}: mapped {mapped} vs real {real}"
        );
    }
}

/// Greedy dynamics with the UMFL response as a *polynomial* pipeline:
/// UMFL responses applied iteratively still terminate on these instances
/// and land within the Theorem 3 factor of stability.
#[test]
fn umfl_response_dynamics() {
    let host = gncg_metrics::arbitrary::random_metric(6, 1.0, 3.0, 4);
    let game = Game::new(host, 1.0);
    let mut p = Profile::star(6, 0);
    for _round in 0..40 {
        let mut moved = false;
        for agent in 0..6u32 {
            let current = gncg_core::cost::agent_cost(&game, &p, agent).total();
            let (strategy, cost) = umfl::best_response_umfl(&game, &p, agent);
            if gncg_graph::strictly_less(cost, current) {
                p.set_strategy(agent, strategy);
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    let factor = nash_approximation_factor(&game, &p);
    assert!(
        factor <= 3.0 + 1e-9,
        "UMFL-stable profile has factor {factor}"
    );
}
