//! Experiments E16, E18, E19, E20: the Rd–GNCG (§3.3 of the paper).

use gncg_core::cost::social_cost;
use gncg_core::equilibrium::is_nash_equilibrium;
use gncg_core::poa;

/// E16 / Theorem 16: the planar set-cover gadget on a second instance and
/// a second norm.
#[test]
fn theorem16_gadget_second_instance() {
    use gncg_constructions::sc_rd_gadget::{GadgetParams, ScRdGadget};
    use gncg_metrics::euclidean::Norm;
    use gncg_solvers::set_cover::{exact_min_cover, SetCoverInstance};
    let inst = SetCoverInstance::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]]);
    let g = ScRdGadget::new(inst, GadgetParams::default_for(4));
    for norm in [Norm::L2, Norm::LInf] {
        let game = g.game(norm);
        let br = gncg_core::response::exact_best_response(&game, &g.profile(), g.u());
        let cover = g.cover_of(&br.strategy);
        assert!(g.instance.is_cover(&cover), "{norm:?}");
        assert_eq!(cover.len(), exact_min_cover(&g.instance).len(), "{norm:?}");
    }
}

/// E18 / Lemma 8: PoA > 1 on the geometric path family for several n, α —
/// with the star certified as NE and the path certified as OPT (small n).
#[test]
fn lemma8_poa_exceeds_one() {
    use gncg_constructions::geometric_path as gp;
    for alpha in [0.5, 2.0, 8.0] {
        for n in [3, 5] {
            let g = gp::game(n, alpha);
            assert!(is_nash_equilibrium(&g, &gp::star_profile(n)));
            let ratio =
                social_cost(&g, &gp::star_profile(n)) / social_cost(&g, &gp::path_profile(n));
            assert!(ratio > 1.0, "n={n} α={alpha}");
            assert!(ratio <= poa::metric_upper_bound(alpha) + 1e-9);
        }
    }
}

/// E19 / Theorem 18: the explicit 4-node ratio formula, plus its
/// asymptote 3 as α → ∞.
#[test]
fn theorem18_formula_and_asymptote() {
    use gncg_constructions::geometric_path as gp;
    for alpha in [0.25, 1.0, 2.0, 30.0] {
        let g = gp::game(3, alpha);
        let measured =
            social_cost(&g, &gp::star_profile(3)) / social_cost(&g, &gp::path_profile(3));
        assert!((measured - poa::rd_pnorm_lower_bound(alpha)).abs() < 1e-9);
    }
    assert!((poa::rd_pnorm_lower_bound(1e8) - 3.0).abs() < 1e-5);
}

/// E20 / Theorem 19: the cross-polytope family across dimensions — the
/// measured ratio equals the formula, grows with d, and approaches
/// (α+2)/2.
#[test]
fn theorem19_dimension_sweep() {
    use gncg_constructions::cross_polytope as cp;
    let alpha = 4.0;
    let mut prev = 0.0;
    for d in [1, 2, 3, 4] {
        let g = cp::game(d, alpha);
        let measured = social_cost(&g, &cp::ne_profile(d)) / social_cost(&g, &cp::opt_profile(d));
        assert!(
            (measured - poa::l1_lower_bound(alpha, d)).abs() < 1e-9,
            "d={d}"
        );
        assert!(measured > prev);
        prev = measured;
    }
    // d = 4 is already most of the way to the metric bound.
    assert!(prev > 0.8 * poa::metric_upper_bound(alpha));
}

/// The cross-polytope NE is certified for a d beyond the unit tests, and
/// the origin star is confirmed optimal by the heuristic search.
#[test]
fn theorem19_certification_d4() {
    use gncg_constructions::cross_polytope as cp;
    let g = cp::game(4, 2.0); // 9 agents
    assert!(is_nash_equilibrium(&g, &cp::ne_profile(4)));
    let heur = gncg_solvers::opt_heuristic::social_optimum_heuristic(&g, 30);
    let star_cost = social_cost(&g, &cp::opt_profile(4));
    assert!(star_cost <= heur.cost + 1e-9);
}

/// Collinear points make all p-norms coincide — the Lemma 8 family gives
/// identical games under L1, L2, L∞ (this is why it bounds *every* p-norm).
#[test]
fn collinear_norm_invariance() {
    use gncg_metrics::euclidean::{Norm, PointSet};
    let xs: Vec<f64> = (0..6).map(|i| (i * i) as f64).collect();
    let ps = PointSet::line(&xs);
    let a = ps.host_matrix(Norm::L1);
    let b = ps.host_matrix(Norm::L2);
    let c = ps.host_matrix(Norm::LInf);
    for (u, v, w) in a.pairs() {
        assert!(gncg_graph::approx_eq(w, b.get(u, v)));
        assert!(gncg_graph::approx_eq(w, c.get(u, v)));
    }
}
