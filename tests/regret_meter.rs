//! Property tests for the streaming max-regret meter (PR 8): on every
//! factory host and response rule, the per-round max regret the engine
//! streams must equal a brute-force best-improvement oracle evaluated on
//! the round's checkpointed profile — and turning the meter on must not
//! perturb the meter-off JSONL bytes or the cell digest.

use proptest::prelude::*;

use gncg_core::response::{best_add_move, best_greedy_move, exact_best_response_reference};
use gncg_core::{Game, NodeId, Profile};
use gncg_dynamics::{DynamicsConfig, ResponseRule, Scheduler};
use gncg_suite::scenario::{cell_digest, CertifyMode, RuleSpec, Runner, ScenarioSpec, SchedSpec};

/// Registry order of the nine factory hosts, so a proptest index hits
/// each of them.
const HOSTS: [&str; 9] = [
    "unit", "onetwo", "tree", "r2", "metric", "general", "grid", "clusters", "oneinf",
];

const ALPHAS: [f64; 3] = [0.5, 2.0, 4.0];

/// The regret the meter must report for `agent` on `profile`: the
/// best-improvement delta under `rule`, computed from scratch with the
/// reference searchers (no warm vectors, no speculation), `INFINITY`
/// when a move first makes an infinite cost finite, `0.0` when nothing
/// improves.
fn oracle_regret(game: &Game, profile: &Profile, agent: NodeId, rule: ResponseRule) -> f64 {
    let current = gncg_core::cost::agent_cost(game, profile, agent).total();
    let best_after = match rule {
        ResponseRule::ExactBestResponse => {
            let br = exact_best_response_reference(game, profile, agent);
            br.improves().then_some(br.cost)
        }
        ResponseRule::BestGreedyMove => best_greedy_move(game, profile, agent).map(|(_, c)| c),
        ResponseRule::AddOnly => best_add_move(game, profile, agent).map(|(_, c)| c),
    };
    match best_after {
        Some(after) if current.is_infinite() && after.is_finite() => f64::INFINITY,
        Some(after) => current - after,
        None => 0.0,
    }
}

/// Exact agreement, with infinities compared as a class of their own.
fn same_regret(measured: f64, oracle: f64) -> bool {
    (measured.is_infinite() && oracle.is_infinite()) || measured == oracle
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every round's streamed per-agent regrets (and their max, the
    /// `max_regret` series entry) equal the brute-force oracle on the
    /// profile the same round's checkpoint recorded; converged runs end
    /// with a final regret of exactly `0.0`.
    #[test]
    fn meter_matches_brute_force_oracle(
        host_idx in 0usize..9,
        rule_idx in 0usize..3,
        n in 4usize..8,
        alpha_idx in 0usize..3,
        seed in 0u64..500,
    ) {
        let rule = [
            ResponseRule::ExactBestResponse,
            ResponseRule::BestGreedyMove,
            ResponseRule::AddOnly,
        ][rule_idx];
        // Exact best response enumerates subsets — keep it tiny.
        let n = if rule == ResponseRule::ExactBestResponse { n.min(5) } else { n };
        let hostm = gncg_metrics::factory::build_host(HOSTS[host_idx], n, seed).unwrap();
        let game = Game::new(hostm, ALPHAS[alpha_idx]);
        let result = gncg_dynamics::run(
            &game,
            Profile::star(n, 0),
            &DynamicsConfig {
                rule,
                scheduler: Scheduler::RoundRobin,
                max_rounds: 80,
                regret_meter: true,
                checkpoint_every: 1,
                ..DynamicsConfig::default()
            },
        );
        let series = result.regret_series.as_ref().expect("meter was on");
        let frames = result.checkpoints.as_ref().expect("checkpoints were on");
        prop_assert_eq!(series.len(), frames.len());
        for (r, frame) in frames.iter().enumerate() {
            prop_assert_eq!(frame.round, r);
            let mut profile = Profile::empty(n);
            for (u, s) in frame.strategies.iter().enumerate() {
                profile.set_strategy(u as NodeId, s.iter().copied().collect());
            }
            let mut oracle_max = 0.0f64;
            for u in 0..n as NodeId {
                let oracle = oracle_regret(&game, &profile, u, rule);
                let measured = frame.regrets[u as usize];
                prop_assert!(
                    same_regret(measured, oracle),
                    "host {} rule {:?} round {r} agent {u}: meter {measured} vs oracle {oracle}",
                    HOSTS[host_idx], rule
                );
                oracle_max = oracle_max.max(oracle);
            }
            prop_assert!(
                same_regret(series[r], oracle_max),
                "round {r}: series {} vs oracle max {oracle_max}", series[r]
            );
        }
        if result.converged() {
            prop_assert_eq!(series.last().copied(), Some(0.0));
        }
    }

    /// Observability is additive at the byte level: the meter-on JSONL
    /// line extends the meter-off line (which never mentions the new
    /// members), the run itself is untouched, and only the opted-in
    /// cell's digest moves.
    #[test]
    fn meter_on_extends_but_never_perturbs_meter_off_bytes(
        host_idx in 0usize..9,
        n in 4usize..8,
        alpha_idx in 0usize..3,
        seed in 0u64..500,
    ) {
        let spec = ScenarioSpec {
            name: "meter-prop".into(),
            hosts: vec![HOSTS[host_idx].to_string()],
            ns: vec![n],
            alphas: vec![ALPHAS[alpha_idx]],
            rules: vec![RuleSpec::Greedy],
            schedulers: vec![SchedSpec::RoundRobin],
            seeds: vec![seed],
            max_rounds: 80,
            base_seed: 7,
            certify: CertifyMode::Full,
            ..ScenarioSpec::default()
        };
        let spec_on = ScenarioSpec {
            regret_meter: true,
            checkpoint_every: 5,
            ..spec.clone()
        };
        let off = &spec.expand()[0];
        let on = &spec_on.expand()[0];
        let mut runner = Runner::new();
        let line_off = runner.run_cell(off).to_jsonl();
        let r_on = runner.run_cell(on);
        let line_on = r_on.to_jsonl();
        prop_assert!(!line_off.contains("max_regret") && !line_off.contains("checkpoints"));
        prop_assert!(line_on.starts_with(&line_off[..line_off.len() - 1]));
        prop_assert!(cell_digest(off) != cell_digest(on));
        // And the off digest only depends on the historical axes: an
        // explicitly-defaulted observability pair hashes identically.
        prop_assert_eq!(cell_digest(off), cell_digest(&spec.expand()[0]));
    }
}
