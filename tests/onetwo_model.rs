//! Experiments E07–E11: the 1-2–GNCG (§3.1 of the paper).

use gncg_core::cost::social_cost;
use gncg_core::equilibrium::is_nash_equilibrium;
use gncg_core::{Game, Profile};

/// E08 / Theorem 6: Algorithm 1 equals the exact optimum for α ≤ 1 across
/// random 1-2 hosts.
#[test]
fn algorithm1_matches_exact_optimum() {
    for seed in 0..3u64 {
        let host = gncg_metrics::onetwo::random(6, 0.5, seed);
        for alpha in [0.2, 0.6, 1.0] {
            let game = Game::new(host.clone(), alpha);
            let exact = gncg_solvers::opt_exact::social_optimum(&game);
            let alg = gncg_solvers::algorithm1::algorithm1_cost(&game);
            assert!(
                gncg_graph::approx_eq(exact.cost, alg),
                "seed {seed} α {alpha}"
            );
        }
    }
}

/// Lemma 3: for α < 1 every NE contains all 1-edges; at α = 1 buying a
/// missing 1-edge is cost-neutral.
#[test]
fn lemma3_one_edges_in_equilibria() {
    let host = gncg_metrics::onetwo::random(6, 0.5, 3);
    let game = Game::new(host.clone(), 0.8);
    let run = gncg_suite::br_dynamics_from_star(&game, 0, 300);
    if run.converged() {
        let g = run.profile.build_network(&game);
        for (u, v, w) in host.pairs() {
            if w == 1.0 {
                assert!(g.has_edge(u, v), "NE at α<1 must contain 1-edge ({u},{v})");
            }
        }
    }
}

/// E07 / Theorem 5: the spanner construction yields certified NE for
/// 1/2 ≤ α ≤ 1 (already covered per-crate; here cross-checked against the
/// PoA bound with the exact OPT).
#[test]
fn spanner_ne_within_poa_bound() {
    for seed in 0..2u64 {
        for alpha in [0.5, 0.75, 1.0] {
            let host = gncg_metrics::onetwo::random(6, 0.45, seed);
            let eq = gncg_solvers::spanner_eq::spanner_equilibrium(&host, alpha);
            assert!(eq.certified_ne);
            let game = Game::new(host, alpha);
            let opt = gncg_solvers::opt_exact::social_optimum(&game);
            let r = social_cost(&game, &eq.profile) / opt.cost;
            let bound = gncg_core::poa::one_two_poa_low_alpha(alpha);
            assert!(r <= bound + 1e-9, "seed {seed} α {alpha}: {r} > {bound}");
        }
    }
}

/// E09 / Theorems 8+9: the clique-of-stars families drive the ratio
/// upward with N while respecting the tight bounds.
#[test]
fn clique_of_stars_families() {
    use gncg_constructions::clique_of_stars::CliqueOfStars;
    // α = 1 family.
    let mut prev = 0.0;
    for n_param in [2, 3, 4] {
        let c = CliqueOfStars::alpha_one(n_param);
        let game = c.game(1.0);
        let r = social_cost(&game, &c.ne_profile()) / social_cost(&game, &c.opt_profile());
        assert!(r > prev && r < 1.5);
        prev = r;
    }
    // α < 1 family at N = 5 exceeds 1 for α = 0.5.
    let c = CliqueOfStars::alpha_below_one(5);
    let game = c.game(0.5);
    let r = social_cost(&game, &c.ne_profile()) / social_cost(&game, &c.opt_profile());
    assert!(r > 1.0 && r < 3.0 / 2.5);
}

/// E10 / Theorem 10 boundary behavior around α = 3.
#[test]
fn star_ne_threshold() {
    // Worst-case witness host: center 2-away from everyone, two leaves
    // 1 apart.
    let mut host = gncg_graph::SymMatrix::filled(4, 2.0);
    host.set(1, 2, 1.0);
    let below = Game::new(host.clone(), 2.9);
    assert!(!is_nash_equilibrium(&below, &Profile::star(4, 0)));
    let at = Game::new(host, 3.0);
    assert!(is_nash_equilibrium(&at, &Profile::star(4, 0)));
}

/// E11 / Theorem 11 + Lemma 7: certified equilibria on random 1-2 hosts
/// have diameter ≤ c·√α and social cost ≤ O(D)·OPT.
#[test]
fn diameter_sqrt_alpha_scaling() {
    for alpha in [2.0, 8.0, 32.0] {
        for seed in 0..2u64 {
            let host = gncg_metrics::onetwo::random(8, 0.4, seed);
            let game = Game::new(host, alpha);
            let run = gncg_suite::greedy_dynamics_from_star(&game, 0, 500);
            assert!(run.converged(), "α={alpha} seed {seed}");
            let g = run.profile.build_network(&game);
            let d = gncg_graph::apsp::apsp_parallel(&g).diameter();
            // In a 1-2 metric the diameter can never exceed the trivial
            // bound anyway; the √α law only binds for large α. Use the
            // paper's qualitative claim: D ∈ O(√α) with a generous
            // constant (the proof yields 5√(2α) + small terms).
            assert!(
                d <= 5.0 * (2.0 * alpha).sqrt() + 4.0,
                "α={alpha} seed {seed}: diameter {d}"
            );
        }
    }
}

/// Lemma 7's decomposition on an equilibrium: cost(G) ≤ O(D)·cost(OPT),
/// measured directly.
#[test]
fn lemma7_cost_vs_diameter() {
    let alpha = 4.0;
    let host = gncg_metrics::onetwo::random(7, 0.5, 5);
    let game = Game::new(host, alpha);
    let run = gncg_suite::br_dynamics_from_star(&game, 0, 300);
    if !run.converged() {
        return;
    }
    let g = run.profile.build_network(&game);
    let d = gncg_graph::apsp::apsp_parallel(&g).diameter();
    let opt = gncg_solvers::opt_exact::social_optimum(&game);
    let ratio = social_cost(&game, &run.profile) / opt.cost;
    // A loose operational constant for the O(D) claim.
    assert!(ratio <= 4.0 * d.max(1.0), "ratio {ratio} vs diameter {d}");
}
