//! Experiments E12, E13, E15: the T–GNCG (§3.2 of the paper).

use gncg_core::cost::social_cost;
use gncg_core::equilibrium::is_nash_equilibrium;
use gncg_core::Game;

/// E12 / Theorem 12: every certified NE on a tree metric is a tree.
#[test]
fn theorem12_equilibria_are_trees() {
    for seed in 0..4u64 {
        let tree = gncg_metrics::treemetric::random_tree(6, 1.0, 5.0, seed);
        let host = tree.metric_closure();
        for alpha in [0.5, 1.0, 2.0] {
            let game = Game::new(host.clone(), alpha);
            let run = gncg_suite::br_dynamics_from_star(&game, 0, 300);
            if !run.converged() {
                continue;
            }
            assert!(is_nash_equilibrium(&game, &run.profile));
            let g = run.profile.build_network(&game);
            assert!(
                g.is_tree(),
                "NE on tree metric must be a tree (seed {seed}, α {alpha}, m = {})",
                g.m()
            );
        }
    }
}

/// Corollary 3: the defining tree is both optimal and (with ownership
/// towards the leaves' parents) a NE — Price of Stability 1.
#[test]
fn corollary3_defining_tree_optimal_and_stable() {
    for seed in 0..3u64 {
        let tree = gncg_metrics::treemetric::random_tree(6, 1.0, 3.0, seed);
        let host = tree.metric_closure();
        for alpha in [1.0, 3.0] {
            let game = Game::new(host.clone(), alpha);
            let profile = gncg_solvers::tree_opt::tree_optimum_profile(&tree);
            // Optimality.
            let exact = gncg_solvers::opt_exact::social_optimum(&game);
            assert!(gncg_graph::approx_eq(
                exact.cost,
                social_cost(&game, &profile)
            ));
            // Stability.
            assert!(
                is_nash_equilibrium(&game, &profile),
                "defining tree must be NE (seed {seed}, α {alpha})"
            );
        }
    }
}

/// E13 / Theorem 13: the set-cover gadget — exercised here end-to-end on a
/// second instance (the unit tests cover the canonical one).
#[test]
fn theorem13_gadget_second_instance() {
    use gncg_constructions::sc_tree_gadget::{GadgetParams, ScTreeGadget};
    use gncg_solvers::set_cover::{exact_min_cover, SetCoverInstance};
    // U = {0..4}, min cover = 2 ({0,1,2} and {3,4} say).
    let inst = SetCoverInstance::new(5, vec![vec![0, 1, 2], vec![2, 3], vec![3, 4], vec![0, 4]]);
    let g = ScTreeGadget::new(inst, GadgetParams::default_for(5));
    let game = g.game();
    let br = gncg_core::response::exact_best_response(&game, &g.profile(), g.u());
    let cover = g.cover_of(&br.strategy);
    assert!(g.instance.is_cover(&cover));
    assert_eq!(cover.len(), exact_min_cover(&g.instance).len());
}

/// E15 / Theorem 15: family ratio at moderate n and a sweep of α.
#[test]
fn theorem15_ratio_sweep() {
    use gncg_constructions::star_tree;
    for alpha in [0.5, 1.0, 4.0, 16.0] {
        let bound = gncg_core::poa::metric_upper_bound(alpha);
        let g = star_tree::game(8, alpha);
        let r = social_cost(&g, &star_tree::ne_profile(8))
            / social_cost(&g, &star_tree::opt_profile(8));
        assert!(r > 1.0 && r < bound, "α={alpha}: {r}");
        // And closed-form convergence.
        assert!(bound - star_tree::ratio_formula(1_000_000, alpha) < 1e-4 * bound);
    }
}

/// Sparsity contrast (Theorem 12 vs §3.1): on 1-2 metrics equilibria may
/// be dense, on tree metrics never.
#[test]
fn tree_equilibria_sparser_than_one_two() {
    // A 1-2 NE with α < 1/2 contains all 1-edges (can be dense)...
    let host12 = gncg_metrics::onetwo::random(6, 0.9, 1);
    let game12 = Game::new(host12, 0.3);
    let run12 = gncg_suite::greedy_dynamics_from_star(&game12, 0, 300);
    assert!(run12.converged());
    let g12 = run12.profile.build_network(&game12);
    assert!(g12.m() > 5, "1-2 equilibrium should be dense here");
    // ...while a tree-metric NE has exactly n−1 edges.
    let tree = gncg_metrics::treemetric::random_tree(6, 1.0, 2.0, 2);
    let gamet = Game::new(tree.metric_closure(), 0.3);
    let runt = gncg_suite::br_dynamics_from_star(&gamet, 0, 300);
    if runt.converged() {
        assert_eq!(runt.profile.build_network(&gamet).m(), 5);
    }
}
