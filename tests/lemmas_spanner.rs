//! Experiments E01/E02/E04: the spanner lemmas and the approximate-NE
//! machinery (Lemma 1, Lemma 2, Theorem 2, Corollary 2).

use gncg_core::equilibrium::{greedy_approximation_factor, nash_approximation_factor};
use gncg_core::spanner_props;
use gncg_core::{Game, Profile};

fn hosts(n: usize) -> Vec<(&'static str, gncg_graph::SymMatrix)> {
    vec![
        ("1-2", gncg_metrics::onetwo::random(n, 0.4, 7)),
        (
            "tree",
            gncg_metrics::treemetric::random_tree(n, 1.0, 4.0, 7).metric_closure(),
        ),
        (
            "R2",
            gncg_metrics::euclidean::PointSet::random(n, 2, 10.0, 7)
                .host_matrix(gncg_metrics::euclidean::Norm::L2),
        ),
        (
            "metric",
            gncg_metrics::arbitrary::random_metric(n, 1.0, 5.0, 7),
        ),
    ]
}

/// Lemma 1 (E01): every AE reached by add-only dynamics is an
/// (α+1)-spanner of the host.
#[test]
fn lemma1_ae_is_spanner() {
    for (name, host) in hosts(7) {
        for alpha in [0.5, 1.0, 3.0] {
            let game = Game::new(host.clone(), alpha);
            // Start from a spanning star (connected ⇒ dynamics stay sane).
            let run = gncg_suite::add_only_dynamics(&game, Profile::star(7, 0), 500);
            assert!(run.converged(), "{name} α={alpha}");
            assert!(
                spanner_props::satisfies_lemma1(&game, &run.profile),
                "{name} α={alpha}: AE must be an (α+1)-spanner, stretch {}",
                spanner_props::profile_stretch(&game, &run.profile)
            );
        }
    }
}

/// Lemma 1 is tight-ish: stretch can approach α+1, and never exceeds it on
/// certified NEs either (NE ⊆ AE).
#[test]
fn lemma1_holds_for_ne_too() {
    for alpha in [1.0, 2.0] {
        let g = gncg_constructions::star_tree::game(6, alpha);
        let ne = gncg_constructions::star_tree::ne_profile(6);
        assert!(spanner_props::satisfies_lemma1(&g, &ne));
    }
}

/// Lemma 2 (E02): the exact social optimum is an (α/2+1)-spanner.
#[test]
fn lemma2_opt_is_spanner() {
    for (name, host) in hosts(6) {
        for alpha in [0.5, 1.0, 3.0, 8.0] {
            let game = Game::new(host.clone(), alpha);
            let opt = gncg_solvers::opt_exact::social_optimum(&game);
            let network = opt.profile.build_network(&game);
            assert!(
                spanner_props::satisfies_lemma2(&game, &network),
                "{name} α={alpha}: OPT must be an (α/2+1)-spanner"
            );
        }
    }
}

/// Theorem 2 (E04): any AE in the M–GNCG is an (α+1)-GE — the greedy
/// improvement factor of an AE is at most α+1.
#[test]
fn theorem2_ae_is_alpha_plus_one_ge() {
    for (name, host) in hosts(7) {
        if name == "1-2" {
            // 1-2 is metric too; keep all.
        }
        for alpha in [0.5, 1.0, 2.0] {
            let game = Game::new(host.clone(), alpha);
            let run = gncg_suite::add_only_dynamics(&game, Profile::star(7, 2), 500);
            assert!(run.converged());
            let factor = greedy_approximation_factor(&game, &run.profile);
            assert!(
                factor <= alpha + 1.0 + 1e-9,
                "{name} α={alpha}: greedy factor {factor} > α+1"
            );
        }
    }
}

/// Corollary 2 (E04): any AE is a 3(α+1)-approximate NE.
#[test]
fn corollary2_ae_is_3_alpha_plus_one_ne() {
    for (name, host) in hosts(6) {
        for alpha in [0.5, 1.0, 2.0] {
            let game = Game::new(host.clone(), alpha);
            let run = gncg_suite::add_only_dynamics(&game, Profile::star(6, 1), 500);
            assert!(run.converged());
            let factor = nash_approximation_factor(&game, &run.profile);
            assert!(
                factor <= 3.0 * (alpha + 1.0) + 1e-9,
                "{name} α={alpha}: nash factor {factor} > 3(α+1)"
            );
        }
    }
}

/// The Lemma 1 proof mechanism: if a pair's stretch exceeded α+1, buying
/// the direct edge would improve — check the contrapositive on a
/// deliberately bad profile.
#[test]
fn lemma1_mechanism_on_unstable_profile() {
    // A long path on the unit metric at small α has stretch n−1 > α+1 and
    // indeed admits improving additions.
    let game = Game::new(gncg_metrics::unit::unit_host(7), 0.5);
    let path = Profile::from_owned_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]);
    assert!(!spanner_props::satisfies_lemma1(&game, &path));
    assert!(!gncg_core::equilibrium::is_add_only_equilibrium(
        &game, &path
    ));
}
