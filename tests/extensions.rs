//! Cross-crate integration tests for the extension modules: cost
//! decomposition analysis, simultaneous dynamics, structured instance
//! families, and shortest-path reconstruction.

use gncg_core::{Game, Profile};
use gncg_dynamics::simultaneous::{run_simultaneous, SimOutcome};
use gncg_dynamics::ResponseRule;
use gncg_metrics::euclidean::Norm;

/// Cost analysis on a dynamics-reached equilibrium: decomposition sums to
/// the social cost and the hub story holds on clustered instances
/// (inter-cluster connectivity is bought by few agents).
#[test]
fn analysis_on_clustered_equilibrium() {
    let points = gncg_metrics::structured::clustered(3, 3, 50.0, 1.0, 7);
    let game = Game::new(points.host_matrix(Norm::L2), 2.0);
    let run = gncg_suite::greedy_dynamics_from_star(&game, 0, 500);
    assert!(run.converged());
    let report = gncg_core::analysis::analyze(&game, &run.profile);
    let direct = gncg_core::cost::social_cost(&game, &run.profile);
    assert!(gncg_graph::approx_eq(report.social_cost, direct));
    assert_eq!(report.agents.len(), 9);
    // Sum of per-agent pieces equals the totals.
    let edge_sum: f64 = report.agents.iter().map(|a| a.cost.edge_cost).sum();
    assert!(gncg_graph::approx_eq(edge_sum, report.total_edge_cost));
    // Someone buys edges; not everyone does.
    assert!(report.biggest_builder().edges_bought >= 1);
}

/// Simultaneous vs sequential dynamics on the same instance: both
/// terminate decisively, and a converged simultaneous run is a genuine
/// equilibrium of its rule.
#[test]
fn simultaneous_terminates_and_certifies() {
    let host = gncg_metrics::arbitrary::random_metric(6, 1.0, 3.0, 11);
    let game = Game::new(host, 1.0);
    let sim = run_simultaneous(
        &game,
        Profile::star(6, 0),
        ResponseRule::BestGreedyMove,
        500,
    );
    match sim.outcome {
        SimOutcome::Converged { .. } => {
            assert!(gncg_core::equilibrium::is_greedy_equilibrium(
                &game,
                &sim.profile
            ));
        }
        SimOutcome::Cycle { recurrence } => {
            assert!(recurrence.period() >= 1);
        }
        SimOutcome::MaxRoundsReached => panic!("should decide within 500 rounds"),
    }
}

/// Grid instances: equilibria respect the metric PoA bound and the grid's
/// symmetry keeps the equilibrium diameter moderate.
#[test]
fn grid_instance_poa() {
    let grid = gncg_metrics::structured::grid(3, 3, 1.0);
    let game = Game::new(grid.host_matrix(Norm::L2), 2.0);
    let run = gncg_suite::greedy_dynamics_from_star(&game, 0, 500);
    assert!(run.converged());
    let eq = gncg_core::cost::social_cost(&game, &run.profile);
    let opt = gncg_solvers::opt_heuristic::social_optimum_heuristic(&game, 40);
    assert!(eq / opt.cost <= gncg_core::poa::metric_upper_bound(2.0) + 1e-9);
}

/// Perturbed tree metrics: at zero noise every certified NE is a tree
/// (Theorem 12); with noise the host leaves the T–GNCG class, and
/// equilibria may legitimately contain cycles — the classification agrees.
#[test]
fn perturbed_tree_structure_degradation() {
    let clean = gncg_metrics::structured::perturbed_tree_metric(6, 0.0, 5);
    assert!(gncg_metrics::validate::is_tree_metric(&clean));
    let noisy = gncg_metrics::structured::perturbed_tree_metric(6, 0.5, 5);
    assert!(!gncg_metrics::validate::is_tree_metric(&noisy));
    assert!(noisy.satisfies_triangle_inequality());
    // Clean host: certified NE must be a tree.
    let game = Game::new(clean, 1.5);
    let run = gncg_suite::br_dynamics_from_star(&game, 0, 300);
    if run.converged() {
        assert!(run.profile.build_network(&game).is_tree());
    }
}

/// Path reconstruction on an equilibrium network: every extracted route's
/// weight equals the distance, and routes are host-graph subpaths.
#[test]
fn route_extraction_on_equilibrium() {
    let host = gncg_metrics::arbitrary::random_metric(7, 1.0, 3.0, 2);
    let game = Game::new(host, 1.5);
    let run = gncg_suite::greedy_dynamics_from_star(&game, 0, 400);
    assert!(run.converged());
    let g = run.profile.build_network(&game);
    let tree = gncg_graph::paths::shortest_path_tree(&g, 0);
    for target in 1..7u32 {
        let path = tree.path_to(target).expect("equilibria are connected");
        let mut total = 0.0;
        for w in path.windows(2) {
            total += g.edge_weight(w[0], w[1]).expect("route uses network edges");
        }
        assert!(gncg_graph::approx_eq(total, tree.dist[target as usize]));
    }
}

/// The 1-∞ row: equilibria never buy forbidden (infinite) edges even when
/// exact best responses are in play.
#[test]
fn one_inf_equilibria_avoid_forbidden_edges() {
    // Seeds sampled so a finite-cost equilibrium is reachable from the
    // star start (other streams can converge to genuinely stuck states
    // where an agent keeps a forbidden edge at cost ∞ because no finite
    // deviation exists — correct model behavior, different property).
    for seed in [0u64, 3, 4] {
        let host = gncg_metrics::oneinf::random_connected(6, 0.25, seed);
        let game = Game::new(host, 2.0);
        let run = gncg_suite::br_dynamics_from_star(&game, 0, 200);
        if !run.converged() {
            continue;
        }
        let g = run.profile.build_network(&game);
        assert!(g.edges().all(|(_, _, w)| w.is_finite()), "seed {seed}");
    }
}

/// Sweep statistics: summary invariants over a mixed batch.
#[test]
fn sweep_summary_invariants() {
    use gncg_dynamics::{DynamicsConfig, Scheduler};
    let hosts: Vec<gncg_graph::SymMatrix> = (0..3)
        .map(|s| gncg_metrics::arbitrary::random_metric(6, 1.0, 4.0, s))
        .collect();
    let cfg = DynamicsConfig {
        rule: ResponseRule::BestGreedyMove,
        scheduler: Scheduler::RoundRobin,
        max_rounds: 300,
        ..DynamicsConfig::default()
    };
    let points =
        gncg_dynamics::parallel::sweep(&hosts, &[1.0, 2.0], &cfg, |_, n| Profile::star(n, 0));
    let summary = gncg_dynamics::stats::summarize(&points);
    assert_eq!(summary.runs, 6);
    assert!(summary.social_cost.min <= summary.social_cost.max);
    assert!((0.0..=1.0).contains(&summary.convergence_rate));
    let accounted = (summary.convergence_rate * summary.runs as f64).round() as usize
        + summary.cycles
        + summary.capped;
    assert_eq!(accounted, summary.runs);
}
