//! Table 1 cross-checks: for every model row of the paper's results table,
//! verify the PoA relationships and equilibrium-existence claims on
//! concrete instances, spanning all crates.

use gncg_core::cost::social_cost;
use gncg_core::equilibrium::is_nash_equilibrium;
use gncg_core::poa;
use gncg_core::{Game, Profile};

/// Row "NCG": NE exist (stars for α ≥ 1 on the unit metric).
#[test]
fn row_ncg_equilibria_exist() {
    for alpha in [1.0, 2.0, 10.0] {
        let game = Game::new(gncg_metrics::unit::unit_host(7), alpha);
        assert!(
            is_nash_equilibrium(&game, &Profile::star(7, 0)),
            "α={alpha}"
        );
    }
}

/// Row "1-2–GNCG", α < 1/2: PoA = 1 — every NE coincides with the
/// Algorithm 1 optimum (Theorem 9).
#[test]
fn row_one_two_poa_one_below_half() {
    for seed in 0..3u64 {
        let host = gncg_metrics::onetwo::random(6, 0.45, seed);
        let game = Game::new(host.clone(), 0.3);
        // Dynamics from a star reach an NE equal in cost to OPT.
        let run = gncg_suite::greedy_dynamics_from_star(&game, 0, 500);
        assert!(run.converged(), "seed {seed}");
        let opt_cost = gncg_solvers::algorithm1::algorithm1_cost(&game);
        let eq_cost = social_cost(&game, &run.profile);
        // The greedy equilibrium must be the optimum (PoA = 1).
        assert!(
            gncg_graph::approx_eq(opt_cost, eq_cost),
            "seed {seed}: eq {eq_cost} vs opt {opt_cost}"
        );
    }
}

/// Row "1-2–GNCG", 1/2 ≤ α < 1: NE exist (Theorem 5) and PoA ≤ 3/(α+2)
/// (Theorem 7).
#[test]
fn row_one_two_mid_alpha() {
    for seed in 0..2u64 {
        for alpha in [0.5, 0.8] {
            let host = gncg_metrics::onetwo::random(6, 0.4, seed);
            let eq = gncg_solvers::spanner_eq::spanner_equilibrium(&host, alpha);
            assert!(eq.certified_ne, "seed {seed} α {alpha}");
            let game = Game::new(host.clone(), alpha);
            let opt = gncg_solvers::opt_exact::social_optimum(&game);
            let r = social_cost(&game, &eq.profile) / opt.cost;
            assert!(
                r <= poa::one_two_poa_low_alpha(alpha) + 1e-9,
                "seed {seed} α {alpha}: ratio {r}"
            );
        }
    }
}

/// Row "1-2–GNCG", α = 1: PoA ≤ 3/2 on sampled equilibria.
#[test]
fn row_one_two_alpha_one() {
    for seed in 0..3u64 {
        let host = gncg_metrics::onetwo::random(6, 0.4, seed);
        let game = Game::new(host, 1.0);
        let run = gncg_suite::br_dynamics_from_star(&game, 0, 300);
        if !run.converged() {
            continue; // no FIP — cycling runs carry no NE to measure
        }
        let opt = gncg_solvers::opt_exact::social_optimum(&game);
        let r = social_cost(&game, &run.profile) / opt.cost;
        assert!(r <= 1.5 + 1e-9, "seed {seed}: ratio {r} > 3/2");
    }
}

/// Row "1-2–GNCG", α ≥ 3: NE exist (stars — Theorem 10).
#[test]
fn row_one_two_high_alpha_star_ne() {
    let host = gncg_metrics::onetwo::random(7, 0.5, 11);
    let game = Game::new(host, 3.5);
    assert!(is_nash_equilibrium(&game, &Profile::star(7, 2)));
}

/// Row "T–GNCG": PoA = (α+2)/2 tight — the family ratio approaches the
/// bound and certified NEs never exceed it.
#[test]
fn row_tree_metric_tight_poa() {
    use gncg_constructions::star_tree;
    for alpha in [0.5, 2.0, 8.0] {
        let bound = poa::metric_upper_bound(alpha);
        // Lower-bound family (exact formulas).
        let r10 = star_tree::ratio_formula(10, alpha);
        let r1000 = star_tree::ratio_formula(1000, alpha);
        assert!(r10 < r1000 && r1000 < bound);
        assert!(bound - r1000 < 0.05 * bound, "α={alpha}");
        // NE existence (Corollary 3): the defining tree is a NE with
        // suitable ownership — certified via the constructed star family
        // (n = 6, exact check).
        let g = star_tree::game(6, alpha);
        assert!(is_nash_equilibrium(&g, &star_tree::ne_profile(6)));
    }
}

/// Row "Rd–GNCG", p ≥ 2: the Theorem 18 lower-bound formula is met by the
/// measured 4-point ratio.
#[test]
fn row_rd_pnorm_lower_bound() {
    use gncg_constructions::geometric_path;
    for alpha in [1.0, 4.0] {
        let g = geometric_path::game(3, alpha);
        let measured = social_cost(&g, &geometric_path::star_profile(3))
            / social_cost(&g, &geometric_path::path_profile(3));
        assert!((measured - poa::rd_pnorm_lower_bound(alpha)).abs() < 1e-9);
        assert!(measured <= poa::metric_upper_bound(alpha) + 1e-9);
    }
}

/// Row "Rd–GNCG", 1-norm: Theorem 19's bound measured on the
/// cross-polytope family.
#[test]
fn row_rd_l1_lower_bound() {
    use gncg_constructions::cross_polytope;
    for d in [2, 3] {
        for alpha in [1.0, 5.0] {
            let g = cross_polytope::game(d, alpha);
            let measured = social_cost(&g, &cross_polytope::ne_profile(d))
                / social_cost(&g, &cross_polytope::opt_profile(d));
            assert!((measured - poa::l1_lower_bound(alpha, d)).abs() < 1e-9);
        }
    }
}

/// Row "M–GNCG": 3(α+1)-approximate NE always exist (Corollary 2 — any AE
/// works); verified by reaching an AE and measuring its Nash approximation
/// factor.
#[test]
fn row_metric_approximate_ne_exist() {
    for seed in 0..3u64 {
        let host = gncg_metrics::arbitrary::random_metric(6, 1.0, 3.0, seed);
        for alpha in [0.5, 1.5] {
            let game = Game::new(host.clone(), alpha);
            let run = gncg_suite::add_only_dynamics(&game, Profile::star(6, 0), 500);
            assert!(run.converged());
            let factor = gncg_core::equilibrium::nash_approximation_factor(&game, &run.profile);
            assert!(
                factor <= 3.0 * (alpha + 1.0) + 1e-9,
                "seed {seed} α {alpha}: factor {factor}"
            );
        }
    }
}

/// Row "GNCG": PoA between (α+2)/2 and ((α+2)/2)² — the Theorem 20 cycle
/// instance realizes the lower end.
#[test]
fn row_general_bounds() {
    use gncg_constructions::three_cycle;
    for alpha in [1.0, 3.0] {
        let g = three_cycle::game(alpha);
        assert!(is_nash_equilibrium(&g, &three_cycle::ne_profile()));
        let r = social_cost(&g, &three_cycle::ne_profile())
            / social_cost(&g, &three_cycle::opt_profile());
        assert!(r >= poa::metric_upper_bound(alpha) - 1e-9);
        assert!(r <= poa::general_upper_bound(alpha) + 1e-9);
    }
}

/// Fig. 1 hierarchy (E23): every factory's output classifies as expected.
#[test]
fn model_hierarchy_classification() {
    use gncg_metrics::{validate, ModelClass};
    // NCG ⊂ 1-2 ⊂ M ⊂ General.
    let ncg = gncg_metrics::unit::unit_host(6);
    let c = validate::classify(&ncg);
    for cls in [
        ModelClass::Ncg,
        ModelClass::OneTwo,
        ModelClass::Metric,
        ModelClass::General,
    ] {
        assert!(c.contains(&cls));
    }
    // T ⊂ M.
    let t = gncg_metrics::treemetric::random_tree(8, 1.0, 2.0, 0).metric_closure();
    let c = validate::classify(&t);
    assert!(c.contains(&ModelClass::TreeMetric) && c.contains(&ModelClass::Metric));
    // R^d ⊂ M.
    let rd = gncg_metrics::euclidean::PointSet::random(8, 2, 5.0, 0)
        .host_matrix(gncg_metrics::euclidean::Norm::L2);
    assert!(validate::classify(&rd).contains(&ModelClass::Metric));
    // 1-∞ ⊄ M (with at least one forbidden edge and n ≥ 3).
    let oi = gncg_metrics::oneinf::from_unit_edges(4, &[(0, 1), (1, 2), (2, 3)]);
    let c = validate::classify(&oi);
    assert!(c.contains(&ModelClass::OneInf) && !c.contains(&ModelClass::Metric));
}
