//! Experiments E25–E27: the Price-of-Stability extension and the paper's
//! two conjectures, cross-crate.

use gncg_core::{poa, Game};
use gncg_solvers::{opt_exact, stability};

/// E25 / Corollary 3: exact PoS = 1 on tree metrics, confirmed by full
/// equilibrium enumeration (not just by exhibiting the tree).
#[test]
fn exact_pos_is_one_on_tree_metrics() {
    for seed in 0..2u64 {
        let tree = gncg_metrics::treemetric::random_tree(5, 1.0, 3.0, seed);
        for alpha in [1.0, 3.0] {
            let game = Game::new(tree.metric_closure(), alpha);
            let land = stability::enumerate_equilibria(&game);
            let opt = opt_exact::social_optimum(&game);
            let pos = land.price_of_stability(opt.cost).expect("NE exists");
            assert!(
                gncg_graph::approx_eq(pos, 1.0),
                "seed {seed} α {alpha}: PoS {pos}"
            );
        }
    }
}

/// E25: the enumerated *worst* NE on the Theorem 15 instance reaches the
/// family's ratio — the v-star really is the worst equilibrium at this
/// size.
#[test]
fn enumerated_poa_matches_family_worst_case() {
    let alpha = 4.0;
    let game = gncg_constructions::star_tree::game(5, alpha);
    let land = stability::enumerate_equilibria(&game);
    let opt = opt_exact::social_optimum(&game);
    let enumerated_poa = land.price_of_anarchy(opt.cost).expect("NE exists");
    let family_ratio = gncg_constructions::star_tree::ratio_formula(5, alpha);
    assert!(
        enumerated_poa >= family_ratio - 1e-9,
        "enumeration ({enumerated_poa}) must dominate the family witness ({family_ratio})"
    );
    assert!(enumerated_poa <= poa::metric_upper_bound(alpha) + 1e-9);
}

/// E25: PoS ≤ PoA always; both within the metric bound on metric hosts.
#[test]
fn pos_poa_sandwich_on_metric_hosts() {
    for seed in 0..3u64 {
        let host = gncg_metrics::arbitrary::random_metric(5, 1.0, 4.0, seed);
        for alpha in [0.5, 2.0] {
            let game = Game::new(host.clone(), alpha);
            let land = stability::enumerate_equilibria(&game);
            let opt = opt_exact::social_optimum(&game);
            if let (Some(pos), Some(poa_v)) = (
                land.price_of_stability(opt.cost),
                land.price_of_anarchy(opt.cost),
            ) {
                assert!(pos >= 1.0 - 1e-9);
                assert!(pos <= poa_v + 1e-9);
                assert!(poa_v <= poa::metric_upper_bound(alpha) + 1e-9);
            }
        }
    }
}

/// E26 / Conjecture 1: certified improving-move cycles exist under the
/// 2-norm (the paper proves the 1-norm case only). Seed pre-located by
/// search; the cycle is independently re-certified here.
#[test]
fn conjecture1_l2_cycle() {
    use gncg_constructions::br_cycles::certify_improving_cycle;
    use gncg_constructions::conjectures::conjecture1_probe;
    use gncg_metrics::euclidean::{Norm, PointSet};
    let found = conjecture1_probe(Norm::L2, 8, 1.0, 4..5, 25_000)
        .expect("the seed-4 L2 instance has a certified cycle");
    let (seed, cycle) = found;
    assert_eq!(seed, 4);
    let game = Game::new(PointSet::random(8, 2, 4.0, seed).host_matrix(Norm::L2), 1.0);
    assert!(certify_improving_cycle(&game, &cycle));
    assert!(cycle.len() >= 2);
}

/// E27 / Conjecture 2: exact PoA of random non-metric instances never
/// exceeds the conjectured (α+2)/2 on the sampled batch.
#[test]
fn conjecture2_exact_poa_batch() {
    use gncg_constructions::conjectures::{conjecture2_probe, worst_normalized};
    let points = conjecture2_probe(4, &[1.0, 3.0], 0..6);
    let worst = worst_normalized(&points);
    assert!(
        worst <= 1.0 + 1e-9,
        "counterexample to Conjecture 2 found: normalized {worst}"
    );
    // And the proven bound holds with slack.
    for p in &points {
        if let Some(exact) = p.exact_poa {
            assert!(exact <= poa::general_upper_bound(p.alpha) + 1e-9);
        }
    }
}

/// Sanity: the equilibrium landscape of the unit K4 at high α contains
/// both the star (worst) and denser equilibria if any; the worst NE is
/// the known NCG worst case.
#[test]
fn unit_host_landscape() {
    let game = Game::new(gncg_metrics::unit::unit_host(4), 3.0);
    let land = stability::enumerate_equilibria(&game);
    assert!(land.count >= 1);
    let opt = opt_exact::social_optimum(&game);
    let poa_v = land.price_of_anarchy(opt.cost).unwrap();
    // NCG at small n: PoA well below 4/3.
    assert!(poa_v <= 4.0 / 3.0 + 1e-9);
}
