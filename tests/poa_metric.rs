//! Experiment E03: the tight PoA of the M–GNCG (Theorem 1 + Theorem 15).

use gncg_constructions::star_tree;
use gncg_core::cost::social_cost;
use gncg_core::poa;
use gncg_core::Game;

/// Upper bound (Theorem 1): every certified NE reached by dynamics on
/// random metric hosts respects cost(NE)/cost(OPT) ≤ (α+2)/2.
#[test]
fn theorem1_upper_bound_on_random_metrics() {
    for seed in 0..4u64 {
        let host = gncg_metrics::arbitrary::random_metric(6, 1.0, 4.0, seed);
        for alpha in [0.5, 1.0, 2.0, 5.0] {
            let game = Game::new(host.clone(), alpha);
            let run = gncg_suite::br_dynamics_from_star(&game, 0, 200);
            if !run.converged() {
                continue;
            }
            // Converged exact-BR dynamics ⇒ certified NE.
            assert!(gncg_core::equilibrium::is_nash_equilibrium(
                &game,
                &run.profile
            ));
            let opt = gncg_solvers::opt_exact::social_optimum(&game);
            let r = social_cost(&game, &run.profile) / opt.cost;
            assert!(
                r <= poa::metric_upper_bound(alpha) + 1e-9,
                "seed {seed} α {alpha}: ratio {r} exceeds (α+2)/2"
            );
        }
    }
}

/// The per-pair σ decomposition of the Theorem 1 proof: on every certified
/// NE, each node pair's cost contribution is within (α+2)/2 of its OPT
/// contribution — aggregated, cost(NE) ≤ (α+2)/2 · cost(OPT).
#[test]
fn theorem1_pairwise_sigma() {
    let seed = 1u64;
    let host = gncg_metrics::arbitrary::random_metric(6, 1.0, 3.0, seed);
    let alpha = 2.0;
    let game = Game::new(host, alpha);
    let run = gncg_suite::br_dynamics_from_star(&game, 0, 200);
    if !run.converged() {
        return;
    }
    let opt = gncg_solvers::opt_exact::social_optimum(&game);
    let ne_net = run.profile.build_network(&game);
    let opt_net = opt.profile.build_network(&game);
    let dn = gncg_graph::apsp::apsp_parallel(&ne_net);
    let dopt = gncg_graph::apsp::apsp_parallel(&opt_net);
    let bound = poa::metric_upper_bound(alpha);
    for u in 0..6u32 {
        for v in (u + 1)..6u32 {
            let x = if ne_net.has_edge(u, v) { 1.0 } else { 0.0 };
            let xs = if opt_net.has_edge(u, v) { 1.0 } else { 0.0 };
            let w = game.w(u, v);
            let sigma =
                (alpha * w * x + 2.0 * dn.get(u, v)) / (alpha * w * xs + 2.0 * dopt.get(u, v));
            assert!(
                sigma <= bound + 1e-9,
                "pair ({u},{v}): σ = {sigma} > {bound}"
            );
        }
    }
}

/// Lower bound (Theorem 15): the star-tree family's measured ratio climbs
/// to within ε of (α+2)/2, and each family member is a certified NE.
#[test]
fn theorem15_family_ratio_climbs_to_bound() {
    let alpha = 3.0;
    let bound = poa::metric_upper_bound(alpha);
    let mut last = 0.0;
    for n in [4, 6, 8] {
        let g = star_tree::game(n, alpha);
        assert!(gncg_core::equilibrium::is_nash_equilibrium(
            &g,
            &star_tree::ne_profile(n)
        ));
        let r = social_cost(&g, &star_tree::ne_profile(n))
            / social_cost(&g, &star_tree::opt_profile(n));
        assert!(r > last);
        assert!(r < bound);
        last = r;
    }
    // Closed form confirms convergence at large n.
    assert!(bound - star_tree::ratio_formula(100_000, alpha) < 1e-3);
}

/// The measured family costs equal the closed forms for a grid of (n, α) —
/// the cost engine and the paper's formulas agree exactly.
#[test]
fn family_formulas_grid() {
    for n in [3, 4, 7, 10] {
        for alpha in [0.25, 1.0, 2.0, 6.0, 13.0] {
            let g = star_tree::game(n, alpha);
            assert!(gncg_graph::approx_eq(
                social_cost(&g, &star_tree::opt_profile(n)),
                star_tree::opt_cost_formula(n, alpha)
            ));
            assert!(gncg_graph::approx_eq(
                social_cost(&g, &star_tree::ne_profile(n)),
                star_tree::ne_cost_formula(n, alpha)
            ));
        }
    }
}
