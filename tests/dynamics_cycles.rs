//! Experiments E14, E17, E24: dynamics and the absence of the finite
//! improvement property (Theorems 14 and 17, Corollary 1).

use gncg_constructions::br_cycles::{
    certify_cycle, certify_improving_cycle, fig5_game, fig8_game, find_best_response_cycle,
    find_improving_move_cycle,
};

/// E14 / Theorem 14: the T–GNCG is not a potential game — a certified
/// improving-move cycle exists on the Figure 5 tree metric. The found
/// cycle has length 4, matching the paper's best-response cycle length.
#[test]
fn theorem14_fig5_improving_cycle() {
    let game = fig5_game(1.0);
    // Seed located by offline search; the certifier re-validates each move.
    let cycle = find_improving_move_cycle(&game, 13, 40_000)
        .expect("an improving-move cycle must exist on the Fig. 5 instance");
    assert!(certify_improving_cycle(&game, &cycle));
    assert!(cycle.len() >= 2);
}

/// E17 / Theorem 17: the Rd–GNCG with the 1-norm has a certified
/// *best-response* cycle on the Figure 8 points (6 moves — matching the 6
/// states the paper's figure shows).
#[test]
fn theorem17_fig8_best_response_cycle() {
    let game = fig8_game(1.0);
    let cycle = find_best_response_cycle(&game, 0, 10_000)
        .expect("a best-response cycle must exist on the Fig. 8 instance");
    assert!(certify_cycle(&game, &cycle));
    assert_eq!(cycle.len(), 6, "the paper's Fig. 8 cycle has 6 states");
}

/// E24 / Corollary 1: convergence is *not* guaranteed — yet dynamics do
/// converge on many instances; measure both outcomes on a small batch and
/// sanity-check the bookkeeping.
#[test]
fn convergence_statistics() {
    use gncg_core::Profile;
    use gncg_dynamics::{DynamicsConfig, Outcome, ResponseRule, Scheduler};
    let hosts: Vec<gncg_graph::SymMatrix> = (0..4)
        .map(|s| gncg_metrics::arbitrary::random_metric(6, 1.0, 4.0, s))
        .collect();
    let cfg = DynamicsConfig {
        rule: ResponseRule::BestGreedyMove,
        scheduler: Scheduler::RoundRobin,
        max_rounds: 400,
        ..DynamicsConfig::default()
    };
    let points =
        gncg_dynamics::parallel::sweep(&hosts, &[0.5, 1.0, 2.0], &cfg, |_, n| Profile::star(n, 0));
    assert_eq!(points.len(), 12);
    for p in &points {
        match p.result.outcome {
            Outcome::Converged { rounds } => assert!(rounds <= 400),
            Outcome::Cycle { recurrence } => assert!(recurrence.period() >= 1),
            Outcome::MaxRoundsReached => {}
        }
        assert!(p.social_cost.is_finite());
    }
    // On these small metric instances greedy dynamics mostly converge.
    let rate = gncg_dynamics::parallel::convergence_rate(&points);
    assert!(rate > 0.5, "convergence rate suspiciously low: {rate}");
}

/// The cycle detector rejects forged cycles whose transitions are not
/// improving (guards the experiment against false positives).
#[test]
fn forged_cycles_rejected() {
    use gncg_constructions::br_cycles::{BestResponseCycle, CycleStep};
    use gncg_core::Profile;
    let game = fig8_game(1.0);
    let p = Profile::star(10, 0);
    let forged = BestResponseCycle {
        steps: vec![CycleStep {
            agent: 3,
            before: p,
            cost_before: 100.0,
            cost_after: 50.0,
        }],
    };
    assert!(!certify_cycle(&game, &forged));
}

/// Improving-move cycles exist in the 1-2 world too (Corollary 1 covers
/// all variants) — search a random 1-2 instance; absence in budget is not
/// a failure (the theorem asserts existence of *some* instance), so this
/// test only validates that any found cycle certifies.
#[test]
fn one_two_cycles_certify_when_found() {
    let host = gncg_metrics::onetwo::random(8, 0.5, 3);
    let game = gncg_core::Game::new(host, 1.0);
    if let Some(c) = find_improving_move_cycle(&game, 0, 5_000) {
        assert!(certify_improving_cycle(&game, &c));
    }
}
