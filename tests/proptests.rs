//! Property-based tests (proptest) on the core data structures and
//! invariants of the reproduction.

use proptest::prelude::*;

use gncg_core::{Game, Profile};
use gncg_graph::{AdjacencyList, SymMatrix};

/// Strategy for a random metric host of size `n` (metric by closure
/// repair).
fn metric_host(n: usize) -> impl Strategy<Value = SymMatrix> {
    proptest::collection::vec(0.1f64..10.0, n * (n - 1) / 2).prop_map(move |ws| {
        let mut it = ws.into_iter();
        let raw = SymMatrix::from_fn(n, |_, _| it.next().unwrap());
        gncg_graph::apsp::floyd_warshall(&raw).into_sym_matrix()
    })
}

/// Random profile on `n` agents: each ordered pair bought with small
/// probability, plus a spanning star for connectivity.
fn profile(n: usize) -> impl Strategy<Value = Profile> {
    proptest::collection::vec(proptest::bool::weighted(0.15), n * n).prop_map(move |bits| {
        let mut p = Profile::star(n, 0);
        for u in 0..n {
            for v in 0..n {
                if u != v && bits[u * n + v] && !p.owns(u as u32, v as u32) {
                    p.buy(u as u32, v as u32);
                }
            }
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The metric closure repair always satisfies the triangle inequality
    /// and only shrinks weights.
    #[test]
    fn closure_repair_is_metric(host in metric_host(6)) {
        prop_assert!(host.satisfies_triangle_inequality());
        prop_assert!(host.is_nonnegative());
    }

    /// Dijkstra and Floyd–Warshall agree on the complete host graph.
    #[test]
    fn dijkstra_matches_floyd_warshall(host in metric_host(6)) {
        let g = AdjacencyList::complete_from_matrix(&host);
        let dj = gncg_graph::apsp::apsp_sequential(&g);
        let fw = gncg_graph::apsp::floyd_warshall(&host);
        for u in 0..6u32 {
            for v in 0..6u32 {
                prop_assert!(gncg_graph::approx_eq(dj.get(u, v), fw.get(u, v)));
            }
        }
    }

    /// Social cost equals the sum of agent costs, for arbitrary profiles.
    #[test]
    fn social_cost_is_sum_of_agent_costs(host in metric_host(6), p in profile(6)) {
        let game = Game::new(host, 1.3);
        let total = gncg_core::cost::social_cost(&game, &p);
        let summed: f64 = (0..6u32)
            .map(|u| gncg_core::cost::agent_cost(&game, &p, u).total())
            .sum();
        prop_assert!(gncg_graph::approx_eq(total, summed));
    }

    /// Distances in any built network dominate host-closure distances
    /// (the bound the best-response pruning relies on).
    #[test]
    fn built_distances_dominate_host(host in metric_host(6), p in profile(6)) {
        let game = Game::new(host, 1.0);
        let net = p.build_network(&game);
        let d = gncg_graph::apsp::apsp_sequential(&net);
        for u in 0..6u32 {
            for v in 0..6u32 {
                prop_assert!(d.get(u, v) + 1e-9 >= game.host_distances().get(u, v));
            }
        }
    }

    /// Exact best response never exceeds the cost of any single greedy
    /// move, and never exceeds the current cost.
    #[test]
    fn exact_br_dominates_greedy(host in metric_host(5), p in profile(5), agent in 0u32..5) {
        let game = Game::new(host, 1.0);
        let br = gncg_core::response::exact_best_response(&game, &p, agent);
        prop_assert!(br.cost <= br.current_cost + 1e-9);
        if let Some((_, greedy)) = gncg_core::response::best_greedy_move(&game, &p, agent) {
            prop_assert!(br.cost <= greedy + 1e-9);
        }
    }

    /// Applying the best response really achieves the reported cost.
    #[test]
    fn br_cost_is_achievable(host in metric_host(5), p in profile(5), agent in 0u32..5) {
        let game = Game::new(host, 0.8);
        let br = gncg_core::response::exact_best_response(&game, &p, agent);
        let mut p2 = p.clone();
        p2.set_strategy(agent, br.strategy.clone());
        let real = gncg_core::cost::agent_cost(&game, &p2, agent).total();
        prop_assert!(gncg_graph::approx_eq(real, br.cost));
    }

    /// The exact social optimum is no costlier than MST, star, or complete
    /// networks.
    #[test]
    fn opt_dominates_reference_networks(host in metric_host(5)) {
        let game = Game::new(host, 2.0);
        let opt = gncg_solvers::opt_exact::social_optimum(&game);
        // Star.
        for c in 0..5u32 {
            let star = Profile::star(5, c);
            prop_assert!(opt.cost <= gncg_core::cost::social_cost(&game, &star) + 1e-9);
        }
        // Complete.
        let full = AdjacencyList::complete_from_matrix(game.host());
        prop_assert!(opt.cost <= gncg_core::cost::network_social_cost(&game, &full) + 1e-9);
        // MST.
        let mst = AdjacencyList::from_edges(5, &gncg_graph::mst::prim_complete(game.host()));
        prop_assert!(opt.cost <= gncg_core::cost::network_social_cost(&game, &mst) + 1e-9);
    }

    /// Lemma 2 as a property: the exact OPT is an (α/2+1)-spanner.
    #[test]
    fn opt_spanner_property(host in metric_host(5)) {
        for alpha in [0.5, 2.0] {
            let game = Game::new(host.clone(), alpha);
            let opt = gncg_solvers::opt_exact::social_optimum(&game);
            let network = opt.profile.build_network(&game);
            prop_assert!(gncg_core::spanner_props::satisfies_lemma2(&game, &network));
        }
    }

    /// Greedy k-spanners really are k-spanners, for varying k.
    #[test]
    fn greedy_spanner_property(host in metric_host(6), k in 1.0f64..3.0) {
        let sp = gncg_graph::spanner::greedy_k_spanner(&host, k);
        let hd = gncg_graph::spanner::host_distances(&host);
        prop_assert!(gncg_graph::spanner::is_k_spanner(&sp, &hd, k));
    }

    /// MST weight is invariant between Prim (dense) and Kruskal (sparse).
    #[test]
    fn mst_weight_invariant(host in metric_host(7)) {
        let prim = gncg_graph::mst::prim_complete(&host);
        let g = AdjacencyList::complete_from_matrix(&host);
        let kruskal = gncg_graph::mst::kruskal(&g);
        let wp: f64 = prim.iter().map(|e| e.2).sum();
        let wk: f64 = kruskal.iter().map(|e| e.2).sum();
        prop_assert!((wp - wk).abs() < 1e-9);
    }

    /// Algorithm 1 output always contains every 1-edge and has diameter
    /// ≤ 2, for arbitrary 1-2 hosts.
    #[test]
    fn algorithm1_properties(bits in proptest::collection::vec(proptest::bool::ANY, 15)) {
        let mut it = bits.into_iter();
        let host = SymMatrix::from_fn(6, |_, _| if it.next().unwrap() { 1.0 } else { 2.0 });
        let g = gncg_solvers::algorithm1::algorithm1(&host);
        for (u, v, w) in host.pairs() {
            if w == 1.0 {
                prop_assert!(g.has_edge(u, v));
            }
        }
        let d = gncg_graph::apsp::apsp_sequential(&g);
        prop_assert!(d.diameter() <= 2.0 + 1e-9);
    }

    /// The speculative move scan must agree with the masked-Dijkstra
    /// oracle **bitwise** — same chosen move, same priced total — at
    /// every activation of a random improving-move sequence over every
    /// factory host, under both greedy rules; and every scan must leave
    /// the warm vector bitwise untouched with both log depths at zero
    /// (the speculation-frame rollback contract).
    #[test]
    fn speculative_move_scan_matches_masked_oracle(
        agents in proptest::collection::vec(0u32..8, 10),
        seed in 0u64..500,
        greedy in proptest::bool::ANY,
    ) {
        use gncg_core::response::{best_move_among_given_current, best_move_among_speculative};
        use gncg_core::Move;
        use gncg_graph::DynamicSssp;
        let n = 8usize;
        let alpha = [0.4, 1.5, 6.0][(seed % 3) as usize];
        for key in gncg_metrics::factory::keys() {
            let host = gncg_metrics::factory::build_host(key, n, seed).unwrap();
            let game = Game::new(host, alpha);
            let mut p = Profile::star(n, 0);
            for &u in &agents {
                let network = p.build_network(&game);
                let moves = if greedy {
                    Move::greedy_moves(&p, u)
                } else {
                    Move::add_moves(&p, u)
                };
                let current = gncg_core::cost::agent_cost_in(&game, &p, &network, u).total();
                let mut warm = DynamicSssp::new();
                warm.reset_from(u, &gncg_graph::dijkstra::dijkstra(&network, u));
                let before = warm.dist().to_vec();
                let spec = best_move_among_speculative(
                    &game, &p, &network, &mut warm, u, current, &moves,
                );
                let oracle =
                    best_move_among_given_current(&game, &p, &network, u, current, &moves);
                prop_assert_eq!(&spec, &oracle, "host '{}' agent {}", key, u);
                prop_assert!(
                    warm.dist() == before.as_slice(),
                    "host '{}' agent {}: rollback must restore the vector bitwise",
                    key,
                    u
                );
                prop_assert_eq!(
                    (warm.depth(), warm.speculation_depth()),
                    (0, 0),
                    "both log depths must return to zero"
                );
                // Walk the dynamics forward: apply the chosen move so
                // later activations scan evolving profiles (including
                // removal-bearing ones under the greedy rule).
                if let Some((m, _)) = spec {
                    let next = m.apply(u, p.strategy(u));
                    p.set_strategy(u, next);
                }
            }
        }
    }

    /// Random interleaved insert / remove / swap sequences over every
    /// registered factory host: a [`gncg_graph::DynamicSssp`] per source
    /// must equal a fresh Dijkstra **bitwise at every step** (the
    /// deletion-tolerant warm-update contract of the dynamics engine),
    /// and neither `relax_insert` nor `remove_edge` may touch the undo
    /// log.
    #[test]
    fn dynamic_sssp_tracks_fresh_dijkstra_under_interleaved_ops(
        ops in proptest::collection::vec(0u64..(1u64 << 62), 16),
        seed in 0u64..1_000,
    ) {
        use gncg_graph::DynamicSssp;
        let n = 8usize;
        for key in gncg_metrics::factory::keys() {
            let host = gncg_metrics::factory::build_host(key, n, seed).unwrap();
            // Start from the star every grid cell starts from, skipping
            // forbidden (∞-weight) host edges like the game layer does.
            let mut g = AdjacencyList::new(n);
            for v in 1..n as u32 {
                let w = host.get(0, v);
                if w.is_finite() {
                    g.add_edge(0, v, w);
                }
            }
            let mut trackers: Vec<DynamicSssp> = (0..n as u32)
                .map(|s| {
                    let mut t = DynamicSssp::new();
                    t.reset_from(s, &gncg_graph::dijkstra::dijkstra(&g, s));
                    t
                })
                .collect();
            for &op in &ops {
                let kind = op % 3; // 0 = insert, 1 = remove, 2 = swap
                if kind >= 1 {
                    // Removal leg (remove and swap). Disconnection is
                    // allowed: ∞ distances must round-trip too.
                    let edges: Vec<_> = g.edges().collect();
                    if !edges.is_empty() {
                        let (a, b, w) = edges[(op / 3) as usize % edges.len()];
                        g.remove_edge(a, b);
                        for t in &mut trackers {
                            t.remove_edge(&g, a, b, w);
                        }
                    }
                }
                if kind == 0 || kind == 2 {
                    // Insertion leg (insert and swap), staged after the
                    // removal exactly like EvalContext::apply_delta.
                    let mut candidates = Vec::new();
                    for u in 0..n as u32 {
                        for v in (u + 1)..n as u32 {
                            if !g.has_edge(u, v) && host.get(u, v).is_finite() {
                                candidates.push((u, v));
                            }
                        }
                    }
                    if !candidates.is_empty() {
                        let (u, v) = candidates[(op / 7) as usize % candidates.len()];
                        let w = host.get(u, v);
                        g.add_edge(u, v, w);
                        for t in &mut trackers {
                            t.relax_insert(&g, u, v, w);
                        }
                    }
                }
                for (s, t) in trackers.iter().enumerate() {
                    let fresh = gncg_graph::dijkstra::dijkstra(&g, s as u32);
                    prop_assert_eq!(
                        t.dist(),
                        fresh.as_slice(),
                        "host '{}' source {}",
                        key,
                        s
                    );
                    prop_assert_eq!(t.depth(), 0, "undo-log depth must stay 0");
                }
            }
        }
    }

    /// The bucket-queue SSSP engine must equal the binary-heap engine
    /// **bitwise** on every factory host — for fresh [`DijkstraScratch`]
    /// runs and for [`DynamicSssp`] trackers driven through interleaved
    /// insert / remove / swap repairs. The weight-class hint is synthetic
    /// (the host's finite weight extremes), forcing the bucket ring even
    /// on hosts whose game-layer class is `None`: the hint may only
    /// change performance, never a byte.
    #[test]
    fn bucket_sssp_matches_heap_bitwise_under_interleaved_ops(
        ops in proptest::collection::vec(0u64..(1u64 << 62), 12),
        seed in 0u64..500,
    ) {
        use gncg_graph::{DijkstraScratch, DynamicSssp};
        let n = 8usize;
        for key in gncg_metrics::factory::keys() {
            let host = gncg_metrics::factory::build_host(key, n, seed).unwrap();
            let finite: Vec<f64> = host
                .pairs()
                .filter_map(|(_, _, w)| w.is_finite().then_some(w))
                .collect();
            let wmin = finite.iter().copied().fold(f64::INFINITY, f64::min);
            let wmax = finite.iter().copied().fold(0.0f64, f64::max);
            let class = Some((wmin, wmax));
            let mut g = AdjacencyList::new(n);
            for v in 1..n as u32 {
                let w = host.get(0, v);
                if w.is_finite() {
                    g.add_edge(0, v, w);
                }
            }
            let mut heap_scr = DijkstraScratch::new();
            let mut bucket_scr = DijkstraScratch::new();
            bucket_scr.set_weight_class(class);
            let make = |c: Option<(f64, f64)>, g: &AdjacencyList| -> Vec<DynamicSssp> {
                (0..n as u32)
                    .map(|s| {
                        let mut t = DynamicSssp::new();
                        t.set_weight_class(c);
                        t.reset_from(s, &gncg_graph::dijkstra::dijkstra(g, s));
                        t
                    })
                    .collect()
            };
            let mut heap_trk = make(None, &g);
            let mut bucket_trk = make(class, &g);
            for &op in &ops {
                let kind = op % 3; // 0 = insert, 1 = remove, 2 = swap
                if kind >= 1 {
                    let edges: Vec<_> = g.edges().collect();
                    if !edges.is_empty() {
                        let (a, b, w) = edges[(op / 3) as usize % edges.len()];
                        g.remove_edge(a, b);
                        for t in heap_trk.iter_mut().chain(bucket_trk.iter_mut()) {
                            t.remove_edge(&g, a, b, w);
                        }
                    }
                }
                if kind == 0 || kind == 2 {
                    let mut candidates = Vec::new();
                    for u in 0..n as u32 {
                        for v in (u + 1)..n as u32 {
                            if !g.has_edge(u, v) && host.get(u, v).is_finite() {
                                candidates.push((u, v));
                            }
                        }
                    }
                    if !candidates.is_empty() {
                        let (u, v) = candidates[(op / 7) as usize % candidates.len()];
                        let w = host.get(u, v);
                        g.add_edge(u, v, w);
                        for t in heap_trk.iter_mut().chain(bucket_trk.iter_mut()) {
                            t.relax_insert(&g, u, v, w);
                        }
                    }
                }
                for s in 0..n as u32 {
                    prop_assert_eq!(
                        heap_trk[s as usize].dist(),
                        bucket_trk[s as usize].dist(),
                        "host '{}' source {}: bucket tracker diverged from heap",
                        key,
                        s
                    );
                }
                let s = (op % n as u64) as u32;
                heap_scr.run(&g, s, &[]);
                let heap_d = heap_scr.to_vec(n);
                bucket_scr.run(&g, s, &[]);
                prop_assert_eq!(
                    heap_d,
                    bucket_scr.to_vec(n),
                    "host '{}' source {}: bucket scratch diverged from heap",
                    key,
                    s
                );
            }
        }
    }

    /// [`gncg_graph::DynamicSssp::relax_inserts`] (one multi-seed drain
    /// over a whole insertion batch — the lazy warm-vector sync path)
    /// must land on the same bitwise fixpoint as replaying the batch
    /// one edge at a time through `relax_insert`, and both must equal a
    /// fresh Dijkstra on the final graph.
    #[test]
    fn batched_insert_sync_matches_sequential_replay(
        picks in proptest::collection::vec(0u64..(1u64 << 62), 6),
        seed in 0u64..500,
    ) {
        use gncg_graph::DynamicSssp;
        let n = 8usize;
        for key in gncg_metrics::factory::keys() {
            let host = gncg_metrics::factory::build_host(key, n, seed).unwrap();
            let mut g = AdjacencyList::new(n);
            for v in 1..n as u32 {
                let w = host.get(0, v);
                if w.is_finite() {
                    g.add_edge(0, v, w);
                }
            }
            let star = g.clone();
            // Stage the batch: each pick buys one still-missing finite
            // host edge (the shape a round of committed add moves logs).
            let mut batch: Vec<(u32, u32, f64)> = Vec::new();
            for &pick in &picks {
                let mut candidates = Vec::new();
                for u in 0..n as u32 {
                    for v in (u + 1)..n as u32 {
                        if !g.has_edge(u, v) && host.get(u, v).is_finite() {
                            candidates.push((u, v));
                        }
                    }
                }
                if candidates.is_empty() {
                    break;
                }
                let (u, v) = candidates[pick as usize % candidates.len()];
                let w = host.get(u, v);
                g.add_edge(u, v, w);
                batch.push((u, v, w));
            }
            for s in 0..n as u32 {
                let d0 = gncg_graph::dijkstra::dijkstra(&star, s);
                let mut seq = DynamicSssp::new();
                seq.reset_from(s, &d0);
                let mut g2 = star.clone();
                for &(u, v, w) in &batch {
                    g2.add_edge(u, v, w);
                    seq.relax_insert(&g2, u, v, w);
                }
                let mut batched = DynamicSssp::new();
                batched.reset_from(s, &d0);
                batched.relax_inserts(&g, &batch);
                prop_assert_eq!(
                    batched.dist(),
                    seq.dist(),
                    "host '{}' source {}: batched sync diverged from sequential replay",
                    key,
                    s
                );
                let fresh = gncg_graph::dijkstra::dijkstra(&g, s);
                prop_assert_eq!(
                    batched.dist(),
                    fresh.as_slice(),
                    "host '{}' source {}: batched sync diverged from fresh Dijkstra",
                    key,
                    s
                );
            }
        }
    }

    /// A horizon-capped speculative insertion (the RegionDelta pricing
    /// frame) must produce a *sound upper-bound* vector — elementwise
    /// between the pre-insert and the exact post-insert distances — and
    /// its rollback must restore the pre-insert vector **bitwise** with
    /// both log depths at zero, for every factory host and budget.
    #[test]
    fn horizon_capped_speculation_is_upper_bound_and_rolls_back_bitwise(
        picks in proptest::collection::vec(0u64..(1u64 << 62), 8),
        seed in 0u64..500,
        cap in 1usize..5,
    ) {
        use gncg_graph::{DijkstraScratch, DynamicSssp};
        let n = 8usize;
        for key in gncg_metrics::factory::keys() {
            let host = gncg_metrics::factory::build_host(key, n, seed).unwrap();
            let mut g = AdjacencyList::new(n);
            for v in 1..n as u32 {
                let w = host.get(0, v);
                if w.is_finite() {
                    g.add_edge(0, v, w);
                }
            }
            let mut exact_scr = DijkstraScratch::new();
            for (i, &pick) in picks.iter().enumerate() {
                // Speculated edges must be incident to the vector's
                // source (the `speculate_insert` contract — agents only
                // price their own candidate edges).
                let s = (pick % n as u64) as u32;
                let targets: Vec<u32> = (0..n as u32)
                    .filter(|&v| v != s && !g.has_edge(s, v) && host.get(s, v).is_finite())
                    .collect();
                if targets.is_empty() {
                    continue;
                }
                let v = targets[(pick / 13) as usize % targets.len()];
                let w = host.get(s, v);
                let mut t = DynamicSssp::new();
                t.reset_from(s, &gncg_graph::dijkstra::dijkstra(&g, s));
                t.set_price_horizon(Some(cap));
                let pre = t.dist().to_vec();
                t.begin_speculation();
                t.speculate_insert(&g, s, v, w);
                exact_scr.run(&g, s, &[(s, v, w)]);
                for (x, &p) in pre.iter().enumerate() {
                    let trunc = t.dist()[x];
                    prop_assert!(
                        trunc <= p && trunc >= exact_scr.dist(x as u32),
                        "host '{}' frame {}: truncated dist[{}] = {} outside [{}, {}]",
                        key, i, x, trunc, exact_scr.dist(x as u32), p
                    );
                }
                t.rollback();
                prop_assert!(
                    t.dist() == pre.as_slice(),
                    "host '{}' frame {}: rollback must restore the vector bitwise",
                    key,
                    i
                );
                prop_assert_eq!((t.depth(), t.speculation_depth()), (0, 0));
                // Commit the edge for real so later frames speculate on
                // evolving networks (and exercise the horizon's
                // committed-path bypass: add_edge must stay exact).
                g.add_edge(s, v, w);
                t.add_edge(&g, s, v, w);
                let fresh = gncg_graph::dijkstra::dijkstra(&g, s);
                prop_assert_eq!(
                    t.dist(),
                    fresh.as_slice(),
                    "host '{}' frame {}: committed add_edge must ignore the horizon",
                    key,
                    i
                );
            }
        }
    }
}
