//! Integration tests of the scenario subsystem: golden determinism of the
//! JSONL grid stream (two runs, and resume-from-partial, byte-identical),
//! registry/direct host equivalence for every factory key, and the `gncg`
//! CLI's grid/resume/exit-code contract.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use proptest::prelude::*;

use gncg_suite::grid::{manifest_path, run_grid};
use gncg_suite::scenario::{CellResult, RuleSpec, ScenarioSpec, SchedSpec};

fn tmp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gncg-scenario-tests-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A ≥64-cell spec exercising several factories, rules, and schedulers
/// (kept at n ≤ 8 so the whole grid runs in seconds).
fn golden_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "golden".into(),
        hosts: vec!["unit".into(), "onetwo".into(), "tree".into(), "r2".into()],
        ns: vec![6],
        alphas: vec![0.5, 2.0],
        rules: vec![RuleSpec::Greedy, RuleSpec::Add],
        schedulers: vec![SchedSpec::RoundRobin, SchedSpec::Random],
        seeds: vec![0, 1],
        max_rounds: 300,
        base_seed: 99,
    }
}

#[test]
fn golden_jsonl_is_byte_identical_across_runs() {
    let dir = tmp_dir();
    let (a, b) = (dir.join("golden-a.jsonl"), dir.join("golden-b.jsonl"));
    let spec = golden_spec();
    assert!(spec.cell_count() >= 64, "golden spec must cover ≥64 cells");
    let sa = run_grid(&spec, &a, false).unwrap();
    let sb = run_grid(&spec, &b, false).unwrap();
    assert_eq!(sa.ran, spec.cell_count());
    assert_eq!(sb.ran, spec.cell_count());
    let ta = fs::read_to_string(&a).unwrap();
    let tb = fs::read_to_string(&b).unwrap();
    assert_eq!(ta, tb, "same spec + seed must stream byte-identical JSONL");
    assert_eq!(ta.lines().count(), spec.cell_count());
    // Every line is well-formed and in cell order.
    for (i, line) in ta.lines().enumerate() {
        assert_eq!(CellResult::cell_index_of_line(line), Some(i));
        assert!(line.ends_with('}'));
    }
}

#[test]
fn golden_resume_from_partial_is_byte_identical() {
    let dir = tmp_dir();
    let full = dir.join("golden-full.jsonl");
    let part = dir.join("golden-part.jsonl");
    let spec = golden_spec();
    run_grid(&spec, &full, false).unwrap();
    run_grid(&spec, &part, false).unwrap();
    let reference = fs::read_to_string(&full).unwrap();

    // Kill the run at several different points, including mid-line.
    for (keep_lines, torn_bytes) in [(0usize, 0usize), (1, 13), (17, 0), (40, 5), (63, 1)] {
        let keep: usize = reference
            .lines()
            .take(keep_lines)
            .map(|l| l.len() + 1)
            .sum::<usize>()
            + torn_bytes;
        fs::OpenOptions::new()
            .write(true)
            .open(&part)
            .and_then(|f| f.set_len(keep as u64))
            .unwrap();
        let summary = run_grid(&spec, &part, true).unwrap();
        assert_eq!(summary.skipped, keep_lines, "clean prefix at {keep_lines}");
        assert_eq!(
            fs::read_to_string(&part).unwrap(),
            reference,
            "resume after truncation to {keep_lines} lines (+{torn_bytes} torn bytes)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Registry-built hosts equal directly-constructed ones for every
    /// factory key: the registry is a pure renaming, not a re-derivation.
    #[test]
    fn registry_equals_direct_construction(n in 4usize..12, seed in 0u64..1000) {
        use gncg_metrics::euclidean::{Norm, PointSet};
        let direct: Vec<(&str, gncg_graph::SymMatrix)> = vec![
            ("unit", gncg_metrics::unit::unit_host(n)),
            ("onetwo", gncg_metrics::onetwo::random(n, 0.4, seed)),
            ("tree", gncg_metrics::treemetric::random_tree(n, 1.0, 4.0, seed).metric_closure()),
            ("r2", PointSet::random(n, 2, 10.0, seed).host_matrix(Norm::L2)),
            ("metric", gncg_metrics::arbitrary::random_metric(n, 1.0, 5.0, seed)),
            ("general", gncg_metrics::arbitrary::random(n, 0.5, 8.0, seed)),
            ("oneinf", gncg_metrics::oneinf::random_connected(n, 0.3, seed)),
        ];
        for (key, expected) in direct {
            let built = gncg_metrics::factory::build_host(key, n, seed).unwrap();
            prop_assert_eq!(&built, &expected, "factory {} at n={}, seed={}", key, n, seed);
        }
        // The truncating structured factories, replicated directly: the
        // first n points of the covering grid / the ceil(n/4) blobs.
        let truncated = |ps: PointSet| -> PointSet {
            PointSet::new((0..n).map(|i| ps.point(i).to_vec()).collect())
        };
        let side = (n as f64).sqrt().ceil() as usize;
        let grid_direct =
            truncated(gncg_metrics::structured::grid(side, side, 1.0)).host_matrix(Norm::L2);
        prop_assert_eq!(
            gncg_metrics::factory::build_host("grid", n, seed).unwrap(),
            grid_direct
        );
        let clusters_direct =
            truncated(gncg_metrics::structured::clustered(n.div_ceil(4), 4, 20.0, 1.0, seed))
                .host_matrix(Norm::L2);
        prop_assert_eq!(
            gncg_metrics::factory::build_host("clusters", n, seed).unwrap(),
            clusters_direct
        );
    }

    /// Every registered key builds, at the sizes scenario grids use.
    #[test]
    fn all_registry_keys_build(n in 2usize..10, seed in 0u64..100) {
        for key in gncg_metrics::factory::keys() {
            let host = gncg_metrics::factory::build_host(key, n, seed).unwrap();
            prop_assert_eq!(host.n(), n);
            prop_assert!(host.is_nonnegative());
        }
    }
}

// ---- CLI contract -------------------------------------------------------

fn gncg() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gncg"))
}

#[test]
fn cli_grid_then_resume_round_trips() {
    let dir = tmp_dir();
    let out = dir.join("cli.jsonl");
    let status = gncg()
        .args([
            "grid",
            "--out",
            out.to_str().unwrap(),
            "--hosts",
            "unit,onetwo",
            "--n",
            "6",
            "--alpha",
            "1.0,2.0",
            "--rules",
            "greedy",
            "--seed-count",
            "2",
            "--max-rounds",
            "200",
        ])
        .status()
        .unwrap();
    assert!(status.success());
    let text = fs::read_to_string(&out).unwrap();
    assert_eq!(text.lines().count(), 8);
    assert!(manifest_path(&out).exists());

    // Truncate to a prefix and resume via the CLI: identical final bytes.
    let cut: usize = text.lines().take(3).map(|l| l.len() + 1).sum();
    fs::OpenOptions::new()
        .write(true)
        .open(&out)
        .and_then(|f| f.set_len(cut as u64))
        .unwrap();
    let status = gncg()
        .args(["resume", "--out", out.to_str().unwrap()])
        .status()
        .unwrap();
    assert!(status.success());
    assert_eq!(fs::read_to_string(&out).unwrap(), text);
}

#[test]
fn cli_exit_codes_are_scriptable() {
    // Invalid args → 2.
    for args in [
        vec!["simulate", "--host", "bogus"],
        vec!["simulate", "--n", "not-a-number"],
        vec!["simulate", "--unknown-flag"],
        vec!["frobnicate"],
        vec!["grid", "--hosts", "unit"], // missing --out
        vec![],
    ] {
        let out = gncg().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
    // Non-convergence → 1 (α < 1 unit dynamics cannot finish in 1 round).
    let out = gncg()
        .args([
            "simulate",
            "--host",
            "unit",
            "--n",
            "6",
            "--alpha",
            "0.4",
            "--max-rounds",
            "1",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    // Convergence → 0.
    let out = gncg()
        .args(["simulate", "--host", "unit", "--n", "6", "--alpha", "2.0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    // list-factories prints every registry key.
    let out = gncg().arg("list-factories").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for key in gncg_metrics::factory::keys() {
        assert!(text.contains(key), "missing factory {key}");
    }
}

#[test]
fn cli_resume_refuses_broken_manifest() {
    // The CLI rebuilds the spec from the manifest, so a *valid* edited
    // manifest is (by construction) self-consistent; the mismatch guard
    // for explicit specs is covered at the library level. What the CLI
    // must catch is an unparsable or missing manifest: exit 2.
    let dir = tmp_dir();
    let out = dir.join("foreign.jsonl");
    run_grid(&golden_spec(), &out, false).unwrap();
    let manifest = manifest_path(&out);
    let mut text = fs::read_to_string(&manifest).unwrap();
    text = text.replace("max_rounds=", "max_rounds=not-a-number; was ");
    fs::write(&manifest, text).unwrap();
    let out_cmd = gncg()
        .args(["resume", "--out", out.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out_cmd.status.code(), Some(2));

    let missing = dir.join("never-ran.jsonl");
    let out_cmd = gncg()
        .args(["resume", "--out", missing.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out_cmd.status.code(), Some(2));
}
