//! Integration tests of the scenario subsystem: golden determinism of the
//! JSONL grid stream (two runs, and resume-from-partial, byte-identical)
//! and registry/direct host equivalence for every factory key. The `gncg`
//! CLI's contract tests live in `crates/service/tests/cli.rs` (the binary
//! moved into the service crate).

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;

use gncg_suite::grid::run_grid;
use gncg_suite::scenario::{CellResult, CertifyMode, RuleSpec, ScenarioSpec, SchedSpec};

fn tmp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gncg-scenario-tests-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A ≥64-cell spec exercising several factories, rules, and schedulers
/// (kept at n ≤ 8 so the whole grid runs in seconds).
fn golden_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "golden".into(),
        hosts: vec!["unit".into(), "onetwo".into(), "tree".into(), "r2".into()],
        ns: vec![6],
        alphas: vec![0.5, 2.0],
        rules: vec![RuleSpec::Greedy, RuleSpec::Add],
        schedulers: vec![SchedSpec::RoundRobin, SchedSpec::Random],
        seeds: vec![0, 1],
        max_rounds: 300,
        base_seed: 99,
        certify: CertifyMode::Full,
        ..ScenarioSpec::default()
    }
}

/// The bounded-horizon pricing policy against its committed golden.
/// These cells run at n = 20 > `PRICE_HORIZON`, so the truncated
/// speculative relaxations genuinely shape which moves are chosen (the
/// stream differs from full-sum pricing on several cells): the constant
/// and the RegionDelta scan are part of the byte contract, and any
/// change to either shows up here as a diff.
#[test]
fn horizon_policy_grid_matches_committed_golden() {
    let dir = tmp_dir();
    let out = dir.join("horizon-policy.jsonl");
    let spec = ScenarioSpec {
        name: "horizon-policy".into(),
        hosts: vec!["r2".into(), "grid".into(), "clusters".into()],
        ns: vec![20],
        alphas: vec![2.0, 4.0],
        rules: vec![RuleSpec::Greedy, RuleSpec::Add],
        schedulers: vec![SchedSpec::RoundRobin],
        seeds: vec![0, 1],
        max_rounds: 500,
        base_seed: 0,
        certify: CertifyMode::Full,
        horizon_pricing: true,
        ..ScenarioSpec::default()
    };
    run_grid(&spec, &out, false).unwrap();
    let got = fs::read_to_string(&out).unwrap();
    let golden = fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/horizon_policy_n20.jsonl"),
    )
    .unwrap();
    assert_eq!(
        got, golden,
        "bounded-horizon grid drifted from the committed golden"
    );
}

#[test]
fn golden_jsonl_is_byte_identical_across_runs() {
    let dir = tmp_dir();
    let (a, b) = (dir.join("golden-a.jsonl"), dir.join("golden-b.jsonl"));
    let spec = golden_spec();
    assert!(spec.cell_count() >= 64, "golden spec must cover ≥64 cells");
    let sa = run_grid(&spec, &a, false).unwrap();
    let sb = run_grid(&spec, &b, false).unwrap();
    assert_eq!(sa.ran, spec.cell_count());
    assert_eq!(sb.ran, spec.cell_count());
    let ta = fs::read_to_string(&a).unwrap();
    let tb = fs::read_to_string(&b).unwrap();
    assert_eq!(ta, tb, "same spec + seed must stream byte-identical JSONL");
    assert_eq!(ta.lines().count(), spec.cell_count());
    // Every line is well-formed and in cell order.
    for (i, line) in ta.lines().enumerate() {
        assert_eq!(CellResult::cell_index_of_line(line), Some(i));
        assert!(line.ends_with('}'));
    }
}

#[test]
fn golden_resume_from_partial_is_byte_identical() {
    let dir = tmp_dir();
    let full = dir.join("golden-full.jsonl");
    let part = dir.join("golden-part.jsonl");
    let spec = golden_spec();
    run_grid(&spec, &full, false).unwrap();
    run_grid(&spec, &part, false).unwrap();
    let reference = fs::read_to_string(&full).unwrap();

    // Kill the run at several different points, including mid-line.
    for (keep_lines, torn_bytes) in [(0usize, 0usize), (1, 13), (17, 0), (40, 5), (63, 1)] {
        let keep: usize = reference
            .lines()
            .take(keep_lines)
            .map(|l| l.len() + 1)
            .sum::<usize>()
            + torn_bytes;
        fs::OpenOptions::new()
            .write(true)
            .open(&part)
            .and_then(|f| f.set_len(keep as u64))
            .unwrap();
        let summary = run_grid(&spec, &part, true).unwrap();
        assert_eq!(summary.skipped, keep_lines, "clean prefix at {keep_lines}");
        assert_eq!(
            fs::read_to_string(&part).unwrap(),
            reference,
            "resume after truncation to {keep_lines} lines (+{torn_bytes} torn bytes)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Registry-built hosts equal directly-constructed ones for every
    /// factory key: the registry is a pure renaming, not a re-derivation.
    #[test]
    fn registry_equals_direct_construction(n in 4usize..12, seed in 0u64..1000) {
        use gncg_metrics::euclidean::{Norm, PointSet};
        let direct: Vec<(&str, gncg_graph::SymMatrix)> = vec![
            ("unit", gncg_metrics::unit::unit_host(n)),
            ("onetwo", gncg_metrics::onetwo::random(n, 0.4, seed)),
            ("tree", gncg_metrics::treemetric::random_tree(n, 1.0, 4.0, seed).metric_closure()),
            ("r2", PointSet::random(n, 2, 10.0, seed).host_matrix(Norm::L2)),
            ("metric", gncg_metrics::arbitrary::random_metric(n, 1.0, 5.0, seed)),
            ("general", gncg_metrics::arbitrary::random(n, 0.5, 8.0, seed)),
            ("oneinf", gncg_metrics::oneinf::random_connected(n, 0.3, seed)),
        ];
        for (key, expected) in direct {
            let built = gncg_metrics::factory::build_host(key, n, seed).unwrap();
            prop_assert_eq!(&built, &expected, "factory {} at n={}, seed={}", key, n, seed);
        }
        // The truncating structured factories, replicated directly: the
        // first n points of the covering grid / the ceil(n/4) blobs.
        let truncated = |ps: PointSet| -> PointSet {
            PointSet::new((0..n).map(|i| ps.point(i).to_vec()).collect())
        };
        let side = (n as f64).sqrt().ceil() as usize;
        let grid_direct =
            truncated(gncg_metrics::structured::grid(side, side, 1.0)).host_matrix(Norm::L2);
        prop_assert_eq!(
            gncg_metrics::factory::build_host("grid", n, seed).unwrap(),
            grid_direct
        );
        let clusters_direct =
            truncated(gncg_metrics::structured::clustered(n.div_ceil(4), 4, 20.0, 1.0, seed))
                .host_matrix(Norm::L2);
        prop_assert_eq!(
            gncg_metrics::factory::build_host("clusters", n, seed).unwrap(),
            clusters_direct
        );
    }

    /// Every registered key builds, at the sizes scenario grids use.
    #[test]
    fn all_registry_keys_build(n in 2usize..10, seed in 0u64..100) {
        for key in gncg_metrics::factory::keys() {
            let host = gncg_metrics::factory::build_host(key, n, seed).unwrap();
            prop_assert_eq!(host.n(), n);
            prop_assert!(host.is_nonnegative());
        }
    }
}
