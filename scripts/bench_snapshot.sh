#!/usr/bin/env bash
# Snapshot the hot-path benchmarks into BENCH_hotpath.json.
#
# Runs the criterion benches `best_response`, `apsp`, `dynamics`, and
# `service_roundtrip` (via the hermetic criterion shim in
# crates/compat/criterion, which appends one JSON line per benchmark
# under target/criterion-lite/),
# then aggregates medians — plus the tracked derived figures
# `incremental_speedup_n14` = exact_bnb_reference/14 ÷ exact_bnb/14,
# `swap_heavy_speedup_n20` = dynamics_swap_heavy/invalidate/20 ÷
# dynamics_swap_heavy/dynamic/20 (warm-vector maintenance under
# swap-heavy moves: Ramalingam–Reps repair vs invalidate-and-redo), and
# `move_scan_speedup_n20` = move_scan/masked/20 ÷ move_scan/speculative/20
# (the per-activation candidate-move scan: speculative warm-vector
# deltas vs one masked Dijkstra per candidate), and the large-n scaling
# figures `sssp_bucket_speedup_n4096` = large_n_sssp/heap/4096 ÷
# large_n_sssp/bucket/4096 (the bucket-queue SSSP core against the
# binary heap on a 4096-node network) and `cost_per_activation_n{256,
# 1024,4096}` = large_n_round/horizon/{n} ÷ n (amortized per-agent cost
# of one bounded-horizon add-only round — the ~O(n) curve ISSUE 9
# tracks), and the pool ablations
# `apsp_parallel_speedup_n256`, `maxgain_parallel_speedup_n20`, and
# `grid_wall_speedup` (each a sequential ÷ pool-parallel pair; ≈ 1.0 on
# a single-core runner, > 1 with real cores), and
# `regret_meter_overhead_n20` = regret_meter/on/20 ÷ regret_meter/off/20
# (the streaming max-regret meter's per-round pricing scan; ≥ 1.0, the
# price of equilibrium-quality observability), and
# `br_grid_speedup_n14` = br_grid/rebuild/14 ÷ br_grid/cached/14 (full
# exact-best-response dynamics over the br-grid n = 14 column with the
# persistent per-agent BR bound tables resident across activations vs
# torn down and rebuilt every activation) —
# into BENCH_hotpath.json at the repo root, so every PR leaves a perf
# trajectory point behind.
#
# Also asserts the exact_bnb_parallel sequential cutoff holds: averaged
# (geometric mean) over the measured sizes, the parallel entry point must
# not cost more than 1.2× the sequential solver (below the cutoff it *is*
# the sequential solver plus one branch; above it, losing to sequential
# means the split is mis-sized). The figure lands in the snapshot as
# `bnb_parallel_overhead_geomean`.
#
# Knobs: CRITERION_LITE_SAMPLES (default 10 per group),
#        CRITERION_LITE_SAMPLE_MS (default 20 ms per sample).
set -euo pipefail

cd "$(dirname "$0")/.."
REPO_ROOT="$PWD"
OUT_DIR="$REPO_ROOT/target/criterion-lite"
export CRITERION_LITE_OUT="$OUT_DIR"

rm -rf "$OUT_DIR"
mkdir -p "$OUT_DIR"

# The best_response group feeds the bnb_parallel_overhead_geomean gate;
# below the MIN_PARALLEL_CANDIDATES = 18 cutoff (every measured n except
# 20) the parallel entry point runs the identical sequential code, so
# any per-size gap there is pure timer noise — one loaded-runner sample
# once put exact_bnb_parallel/14 at 2.0x its sequential twin. 25 samples
# instead of the default 10 washes single outliers out of the geomean.
echo "== cargo bench --bench best_response (25 samples)" >&2
CRITERION_LITE_SAMPLES="${CRITERION_LITE_SAMPLES:-25}" \
    cargo bench -p gncg-bench --bench best_response >&2

for bench in apsp dynamics move_scan service_roundtrip; do
    echo "== cargo bench --bench $bench" >&2
    cargo bench -p gncg-bench --bench "$bench" >&2
done

# The large-n group runs single-shot: its n = 4096 round payload lasts
# over a minute per iteration, so the shim's usual warmup + 10 samples
# would cost tens of minutes. One sample of a deterministic multi-second
# payload is already far above measurement noise (a 1-sample median is
# that sample).
echo "== cargo bench --bench large_n (single-shot)" >&2
CRITERION_LITE_SAMPLES=1 CRITERION_LITE_SAMPLE_MS=1 \
    cargo bench -p gncg-bench --bench large_n >&2

python3 - "$OUT_DIR" "$REPO_ROOT/BENCH_hotpath.json" <<'PY'
import json, math, pathlib, sys, datetime

out_dir, dest = pathlib.Path(sys.argv[1]), pathlib.Path(sys.argv[2])
medians = {}
for f in sorted(out_dir.glob("*.jsonl")):
    for line in f.read_text().splitlines():
        rec = json.loads(line)
        # Last write wins: reruns within one snapshot supersede.
        medians[rec["benchmark"]] = rec["median_ns"]

snapshot = {
    "generated_by": "scripts/bench_snapshot.sh",
    "date": datetime.date.today().isoformat(),
    "median_ns": dict(sorted(medians.items())),
}
ref = medians.get("best_response/exact_bnb_reference/14")
inc = medians.get("best_response/exact_bnb/14")
if ref and inc:
    snapshot["incremental_speedup_n14"] = round(ref / inc, 2)
redo = medians.get("dynamics_swap_heavy/invalidate/20")
dyn = medians.get("dynamics_swap_heavy/dynamic/20")
if redo and dyn:
    snapshot["swap_heavy_speedup_n20"] = round(redo / dyn, 2)
masked = medians.get("move_scan/masked/20")
spec = medians.get("move_scan/speculative/20")
if masked and spec:
    snapshot["move_scan_speedup_n20"] = round(masked / spec, 2)
meter_on = medians.get("regret_meter/on/20")
meter_off = medians.get("regret_meter/off/20")
if meter_on and meter_off:
    snapshot["regret_meter_overhead_n20"] = round(meter_on / meter_off, 2)
br_rebuild = medians.get("br_grid/rebuild/14")
br_cached = medians.get("br_grid/cached/14")
if br_rebuild and br_cached:
    snapshot["br_grid_speedup_n14"] = round(br_rebuild / br_cached, 2)
heap4k = medians.get("large_n_sssp/heap/4096")
bucket4k = medians.get("large_n_sssp/bucket/4096")
if heap4k and bucket4k:
    snapshot["sssp_bucket_speedup_n4096"] = round(heap4k / bucket4k, 2)
for n in (256, 1024, 4096):
    rnd = medians.get(f"large_n_round/horizon/{n}")
    if rnd:
        # One add-only round activates every agent once, so the round
        # median over n is the amortized per-activation cost.
        snapshot[f"cost_per_activation_n{n}"] = round(rnd / n)
for fig, seq, par in (
    ("apsp_parallel_speedup_n256", "apsp/sequential/256", "apsp/parallel/256"),
    ("maxgain_parallel_speedup_n20", "maxgain_scan/sequential/20", "maxgain_scan/parallel/20"),
    ("grid_wall_speedup", "grid_wall/sequential/12cells", "grid_wall/parallel/12cells"),
):
    s, p = medians.get(seq), medians.get(par)
    if s and p:
        snapshot[fig] = round(s / p, 2)

# Cutoff guard: averaged over every measured n, the parallel BnB entry
# point must not lose to the sequential solver. Below the cutoff the two
# arms run identical code, so single-point gaps are scheduler noise
# (±25% has been observed on a loaded single-core runner); the geometric
# mean across sizes averages that out while still catching the
# structural regression the cutoff fixed (unconditional splitting
# measured ~1.27x geomean before MIN_PARALLEL_CANDIDATES existed).
TOLERANCE = 1.20
ratios = {}
for name, par_ns in medians.items():
    prefix = "best_response/exact_bnb_parallel/"
    if name.startswith(prefix):
        n = name[len(prefix):]
        seq_ns = medians.get(f"best_response/exact_bnb/{n}")
        if seq_ns:
            ratios[n] = par_ns / seq_ns
if ratios:
    geomean = math.exp(sum(map(math.log, ratios.values())) / len(ratios))
    snapshot["bnb_parallel_overhead_geomean"] = round(geomean, 2)
    if geomean > TOLERANCE:
        per_n = ", ".join(f"n={n}: {r:.2f}x" for n, r in sorted(ratios.items()))
        sys.exit(
            f"exact_bnb_parallel cutoff regression: geomean {geomean:.2f}x > "
            f"{TOLERANCE}x vs exact_bnb ({per_n})"
        )

dest.write_text(json.dumps(snapshot, indent=2) + "\n")
print(f"wrote {dest} ({len(medians)} benchmarks)")
for fig in (
    "incremental_speedup_n14",
    "swap_heavy_speedup_n20",
    "move_scan_speedup_n20",
    "regret_meter_overhead_n20",
    "br_grid_speedup_n14",
    "sssp_bucket_speedup_n4096",
    "apsp_parallel_speedup_n256",
    "maxgain_parallel_speedup_n20",
    "grid_wall_speedup",
):
    if fig in snapshot:
        print(f"{fig} = {snapshot[fig]}x")
for n in (256, 1024, 4096):
    fig = f"cost_per_activation_n{n}"
    if fig in snapshot:
        print(f"{fig} = {snapshot[fig]} ns")
PY
