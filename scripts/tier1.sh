#!/usr/bin/env bash
# Tier-1 verification flow: format, lint clean, build, test, and a smoke
# run of the scenario grid pipeline.
#
# `cargo fmt --check` and `cargo clippy -- -D warnings` run first so a
# style or lint regression fails the flow before the (longer) build +
# test steps.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check" >&2
cargo fmt --check

echo "== cargo clippy (deny warnings)" >&2
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (deny warnings)" >&2
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo build --release" >&2
cargo build --release

echo "== cargo test" >&2
cargo test -q

echo "== rayon shim under an oversubscribed pool (GNCG_THREADS=4)" >&2
# The pool tests must pass at a thread count above the core count: steals
# and panic propagation still have to behave when workers outnumber CPUs.
GNCG_THREADS=4 cargo test -q -p rayon

echo "== cargo bench smoke (compile all, 1-sample run of the tracked set)" >&2
# Benches are compiled by clippy but never executed by `cargo test`, so a
# runtime regression (a panicked setup assert, a changed bench id) rots
# silently. Compile every bench target, then run the benches
# bench_snapshot.sh tracks with one tiny sample each (the untracked
# solver benches cost minutes per iteration — compile-only for those).
cargo bench -p gncg-bench --no-run
for bench in best_response apsp dynamics move_scan service_roundtrip; do
  CRITERION_LITE_SAMPLES=1 CRITERION_LITE_SAMPLE_MS=1 \
    CRITERION_LITE_OUT=target/criterion-smoke \
    cargo bench -p gncg-bench --bench "$bench" >/dev/null
done
# large_n smokes only its sub-minute ids: the n=4096 round costs over a
# minute per iteration and the grid/daemon sections below already run
# that cell end to end, so the bench smoke filters to n=1024 (which
# covers both groups' setup and payload paths).
CRITERION_LITE_SAMPLES=1 CRITERION_LITE_SAMPLE_MS=1 \
  CRITERION_LITE_OUT=target/criterion-smoke \
  cargo bench -p gncg-bench --bench large_n -- 1024 >/dev/null
rm -rf target/criterion-smoke

echo "== gncg grid smoke (4 cells, n ≤ 8)" >&2
rm -f target/tier1-grid.jsonl target/tier1-grid.manifest
./target/release/gncg grid \
  --out target/tier1-grid.jsonl \
  --name tier1-smoke \
  --hosts unit,onetwo --n 6 --alpha 1.0,2.0 \
  --rules greedy --seed-count 1 --max-rounds 200
lines=$(wc -l < target/tier1-grid.jsonl)
if [ "$lines" -ne 4 ]; then
  echo "tier-1 grid smoke: expected 4 JSONL lines, got $lines" >&2
  exit 1
fi
# Resuming a complete grid must be a no-op that leaves the bytes alone.
cp target/tier1-grid.jsonl target/tier1-grid.jsonl.orig
./target/release/gncg resume --out target/tier1-grid.jsonl
cmp target/tier1-grid.jsonl target/tier1-grid.jsonl.orig
rm -f target/tier1-grid.jsonl.orig

echo "== swap-heavy grid vs committed golden (36 cells, n = 20)" >&2
# The removal-richest regime (≈ half the applied moves delete or swap
# edges) byte-compared against the committed pre-speculation golden:
# warm-vector repairs, the speculative move scan, and the work-stealing
# pool must never move a result byte. Run once pinned to one thread and
# once on the default pool — both must equal the golden exactly.
swap_heavy_grid() {
  rm -f target/tier1-swap-heavy.jsonl target/tier1-swap-heavy.manifest
  ./target/release/gncg grid \
    --out target/tier1-swap-heavy.jsonl \
    --name swap-heavy \
    --hosts r2,grid,clusters --n 20 --alpha 2.0,4.0,8.0 \
    --rules greedy --scheds rr --seeds 0,1,2,3 --max-rounds 500 --base-seed 0
  cmp target/tier1-swap-heavy.jsonl tests/golden/swap_heavy_n20.jsonl
}
GNCG_THREADS=1 swap_heavy_grid
(unset GNCG_THREADS && swap_heavy_grid)

echo "== br-grid vs committed golden (36 exact-BR cells, n = 12/14)" >&2
# Exact best responses priced off the persistent per-agent bound tables
# (BrBoundCache): delta-maintained d0/B* vectors, stale-admissible
# removals, memoized re-probes. The committed golden locks the cached
# path's bytes to the rebuild-every-activation baseline at one pool
# thread and at four.
br_grid() {
  rm -f target/tier1-br-grid.jsonl target/tier1-br-grid.manifest
  GNCG_THREADS="$1" ./target/release/gncg grid \
    --out target/tier1-br-grid.jsonl \
    --preset br-grid
  cmp target/tier1-br-grid.jsonl tests/golden/br_grid_n14.jsonl
}
br_grid 1
br_grid 4

echo "== horizon-policy grid vs committed golden (24 cells, n = 20)" >&2
# Bounded-horizon pricing at n = 20 > PRICE_HORIZON, where the truncated
# speculative relaxations genuinely shape move selection: the committed
# golden locks the constant and the RegionDelta scan byte for byte.
rm -f target/tier1-horizon.jsonl target/tier1-horizon.manifest
./target/release/gncg grid \
  --out target/tier1-horizon.jsonl \
  --name horizon-policy \
  --hosts r2,grid,clusters --n 20 --alpha 2.0,4.0 \
  --rules greedy,add --scheds rr --seeds 0,1 --max-rounds 500 --base-seed 0 \
  --horizon
cmp target/tier1-horizon.jsonl tests/golden/horizon_policy_n20.jsonl

echo "== large-n grid (n = 1024 preset cell, byte-stable across thread counts)" >&2
# The large-n scale path end to end: the full 3-round n = 1024 preset
# cell — bucket-queue SSSP core, lazily synced warm vectors, and
# bounded-horizon pricing all on the hot path — must produce identical
# bytes pinned to one pool thread and at four.
large_n_1024() {
  rm -f "target/tier1-large-n-$1.jsonl" "target/tier1-large-n-$1.manifest"
  GNCG_THREADS="$1" ./target/release/gncg grid \
    --out "target/tier1-large-n-$1.jsonl" \
    --preset large-n --n 1024
}
large_n_1024 1
large_n_1024 4
cmp target/tier1-large-n-1.jsonl target/tier1-large-n-4.jsonl

echo "== large-n grid (n = 4096 cell vs committed golden)" >&2
# One round of the n = 4096 preset cell (one round already sweeps all
# 4096 activations through the scan; the daemon leg below replays the
# same cell over the wire) against its committed golden line.
rm -f target/tier1-large-n-4096.jsonl target/tier1-large-n-4096.manifest
./target/release/gncg grid \
  --out target/tier1-large-n-4096.jsonl \
  --preset large-n --n 4096 --max-rounds 1
cmp target/tier1-large-n-4096.jsonl tests/golden/large_n_4096_r1.jsonl

echo "== observability smoke (meter + checkpoints, byte-stable across thread counts)" >&2
# The streamed max-regret series and checkpoint frames are part of the
# determinism contract: the same metered grid must produce identical
# bytes at 1, 2, and 4 pool threads (GNCG_THREADS is read at pool init,
# so each run gets its own process).
meter_grid() {
  rm -f "target/tier1-meter-$1.jsonl" "target/tier1-meter-$1.manifest"
  GNCG_THREADS="$1" ./target/release/gncg grid \
    --out "target/tier1-meter-$1.jsonl" \
    --name tier1-meter \
    --hosts unit,onetwo --n 6 --alpha 1.0,2.0 \
    --rules greedy --seed-count 1 --max-rounds 200 \
    --regret-meter --checkpoint-every 1
}
meter_grid 1
meter_grid 2
meter_grid 4
cmp target/tier1-meter-1.jsonl target/tier1-meter-2.jsonl
cmp target/tier1-meter-1.jsonl target/tier1-meter-4.jsonl
grep -q '"max_regret":\[' target/tier1-meter-1.jsonl
grep -q '"checkpoints":\[{"round":' target/tier1-meter-1.jsonl
# Every converged cell must end at a regret of exactly 0.0.
if grep '"outcome":"converged"' target/tier1-meter-1.jsonl | grep -v '"max_regret":\[.*,0\.0\]' \
   | grep -v '"max_regret":\[0\.0\]' | grep -q .; then
  echo "tier-1 observability smoke: a converged cell ended at nonzero regret" >&2
  exit 1
fi

echo "== gncg service smoke (serve → submit ×2 → shutdown)" >&2
SERVICE_ADDR=127.0.0.1:47421
rm -f target/tier1-serve.log target/tier1-submit-a.jsonl target/tier1-submit-b.jsonl \
  target/tier1-submit-meter.jsonl target/tier1-submit-large-n.jsonl
./target/release/gncg serve --addr "$SERVICE_ADDR" --workers 2 \
  > target/tier1-serve.log 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
./target/release/gncg ping --addr "$SERVICE_ADDR" --wait-ms 10000
# Same 4-cell spec as the offline smoke above: the streamed bytes must be
# byte-identical to the offline grid output.
submit_smoke() {
  ./target/release/gncg submit --addr "$SERVICE_ADDR" \
    --out "$1" \
    --name tier1-smoke \
    --hosts unit,onetwo --n 6 --alpha 1.0,2.0 \
    --rules greedy --seed-count 1 --max-rounds 200
}
submit_smoke target/tier1-submit-a.jsonl
cmp target/tier1-submit-a.jsonl target/tier1-grid.jsonl
# The second submission must complete entirely from the result cache.
second=$(submit_smoke target/tier1-submit-b.jsonl)
cmp target/tier1-submit-b.jsonl target/tier1-grid.jsonl
echo "$second" | grep -q "4 cache hits, 0 simulated" || {
  echo "tier-1 service smoke: second submit not served from cache: $second" >&2
  exit 1
}
# Observability read-side against the live daemon: a metered job, then
# explore (checkpoint replay + strategy diff), metrics, and the one-line
# status summary.
meter_submit=$(./target/release/gncg submit --addr "$SERVICE_ADDR" \
  --out target/tier1-submit-meter.jsonl \
  --name tier1-meter \
  --hosts unit,onetwo --n 6 --alpha 1.0,2.0 \
  --rules greedy --seed-count 1 --max-rounds 200 \
  --regret-meter --checkpoint-every 1)
cmp target/tier1-submit-meter.jsonl target/tier1-meter-1.jsonl
meter_job=$(echo "$meter_submit" | sed -n 's/^submit: job \([0-9]*\).*/\1/p')
explore_out=$(./target/release/gncg explore --addr "$SERVICE_ADDR" \
  --job "$meter_job" --cell 0 --diff 0)
echo "$explore_out" | grep -q "max regret" || {
  echo "tier-1 observability smoke: explore printed no regret: $explore_out" >&2
  exit 1
}
echo "$explore_out" | grep -q "strategy diff" || {
  echo "tier-1 observability smoke: explore printed no diff: $explore_out" >&2
  exit 1
}
# Large-n through the daemon: the n = 4096 one-round cell must stream
# the same bytes over the wire that the offline grid and the committed
# golden carry, and afterwards the worker engines' warm-vector memory
# peak (4096 agents × 4096-slot distance vectors ≫ 0) must surface in
# the metrics summary.
./target/release/gncg submit --addr "$SERVICE_ADDR" \
  --out target/tier1-submit-large-n.jsonl \
  --preset large-n --n 4096 --max-rounds 1
cmp target/tier1-submit-large-n.jsonl tests/golden/large_n_4096_r1.jsonl
metrics_out=$(./target/release/gncg metrics --addr "$SERVICE_ADDR")
echo "$metrics_out" | grep -q "cells simulated" || {
  echo "tier-1 observability smoke: metrics printed no counters: $metrics_out" >&2
  exit 1
}
echo "$metrics_out" | grep -Eq "warm vectors: peak [1-9][0-9]{6,} bytes" || {
  echo "tier-1 large-n smoke: metrics warm-vector peak missing or implausibly small" >&2
  echo "$metrics_out" >&2
  exit 1
}
status_out=$(./target/release/gncg status --addr "$SERVICE_ADDR")
if [ "$(echo "$status_out" | wc -l)" -ne 1 ]; then
  echo "tier-1 observability smoke: status is not one line: $status_out" >&2
  exit 1
fi
echo "$status_out" | grep -q "up .*queued.*running.*done" || {
  echo "tier-1 observability smoke: status misses a job state: $status_out" >&2
  exit 1
}
# Graceful exit: --drain finishes anything active (nothing, here) and
# refuses new work before the daemon stops itself.
./target/release/gncg shutdown --addr "$SERVICE_ADDR" --drain
wait "$SERVE_PID"
trap - EXIT

echo "== chaos suite (fault injection, --features failpoints)" >&2
cargo test -q -p gncg-service --features failpoints --test chaos

echo "== chaos smoke (kill -9 mid-job → restart → journal replay → byte-diff)" >&2
# The debug binary built with --features failpoints carries the fault
# registry; GNCG_FAILPOINTS aborts the daemon at its 2nd simulated cell
# — a deterministic kill -9 mid-job. The release binary stays fault-free.
cargo build -q -p gncg-service --features failpoints
CHAOS_ADDR=127.0.0.1:47423
CHAOS_DIR=target/tier1-chaos
rm -rf "$CHAOS_DIR" && mkdir -p "$CHAOS_DIR"
chaos_submit() {
  ./target/debug/gncg submit --addr "$CHAOS_ADDR" \
    --out "$1" \
    --name tier1-smoke \
    --hosts unit,onetwo --n 6 --alpha 1.0,2.0 \
    --rules greedy --seed-count 1 --max-rounds 200
}
GNCG_FAILPOINTS="worker.cell=abort@2" ./target/debug/gncg serve \
  --addr "$CHAOS_ADDR" --workers 1 \
  --journal "$CHAOS_DIR/jobs.journal" --cache "$CHAOS_DIR/results.cache" \
  > "$CHAOS_DIR/serve-crash.log" 2>&1 &
CHAOS_PID=$!
trap 'kill -9 "$CHAOS_PID" 2>/dev/null || true' EXIT
./target/debug/gncg ping --addr "$CHAOS_ADDR" --wait-ms 10000
if chaos_submit "$CHAOS_DIR/doomed.jsonl"; then
  echo "tier-1 chaos smoke: submit survived a daemon that aborts mid-job" >&2
  exit 1
fi
wait "$CHAOS_PID" 2>/dev/null || true # died by its own abort
# Restart fault-free on the same journal: the unfinished job replays
# under its original id and a retried tail yields the offline bytes.
./target/debug/gncg serve --addr "$CHAOS_ADDR" --workers 1 \
  --journal "$CHAOS_DIR/jobs.journal" --cache "$CHAOS_DIR/results.cache" \
  > "$CHAOS_DIR/serve-replay.log" 2>&1 &
CHAOS_PID=$!
trap 'kill -9 "$CHAOS_PID" 2>/dev/null || true' EXIT
./target/debug/gncg ping --addr "$CHAOS_ADDR" --wait-ms 10000
./target/debug/gncg tail --addr "$CHAOS_ADDR" --job 1 \
  --out "$CHAOS_DIR/replayed.jsonl" --retries 2 --timeout-ms 30000
cmp "$CHAOS_DIR/replayed.jsonl" target/tier1-grid.jsonl
./target/debug/gncg shutdown --addr "$CHAOS_ADDR" --drain
wait "$CHAOS_PID" 2>/dev/null || true
trap - EXIT

echo "tier-1 OK" >&2
