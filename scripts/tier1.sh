#!/usr/bin/env bash
# Tier-1 verification flow: lint clean, build, test.
#
# `cargo clippy -- -D warnings` runs first so a lint regression fails the
# flow before the (longer) build + test steps.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo clippy (deny warnings)" >&2
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release" >&2
cargo build --release

echo "== cargo test" >&2
cargo test -q
