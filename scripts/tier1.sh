#!/usr/bin/env bash
# Tier-1 verification flow: format, lint clean, build, test, and a smoke
# run of the scenario grid pipeline.
#
# `cargo fmt --check` and `cargo clippy -- -D warnings` run first so a
# style or lint regression fails the flow before the (longer) build +
# test steps.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check" >&2
cargo fmt --check

echo "== cargo clippy (deny warnings)" >&2
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release" >&2
cargo build --release

echo "== cargo test" >&2
cargo test -q

echo "== gncg grid smoke (4 cells, n ≤ 8)" >&2
rm -f target/tier1-grid.jsonl target/tier1-grid.manifest
./target/release/gncg grid \
  --out target/tier1-grid.jsonl \
  --name tier1-smoke \
  --hosts unit,onetwo --n 6 --alpha 1.0,2.0 \
  --rules greedy --seed-count 1 --max-rounds 200
lines=$(wc -l < target/tier1-grid.jsonl)
if [ "$lines" -ne 4 ]; then
  echo "tier-1 grid smoke: expected 4 JSONL lines, got $lines" >&2
  exit 1
fi
# Resuming a complete grid must be a no-op that leaves the bytes alone.
cp target/tier1-grid.jsonl target/tier1-grid.jsonl.orig
./target/release/gncg resume --out target/tier1-grid.jsonl
cmp target/tier1-grid.jsonl target/tier1-grid.jsonl.orig
rm -f target/tier1-grid.jsonl.orig

echo "tier-1 OK" >&2
