//! Price-of-Anarchy sweep: measured equilibrium/optimum ratios across α
//! and model variants, printed as a plot-ready table. Runs the sweeps in
//! parallel on the rayon pool.
//!
//! ```text
//! cargo run --release -p gncg-suite --example poa_sweep
//! ```

use gncg_core::cost::social_cost;
use gncg_core::{Game, Profile};
use gncg_dynamics::{DynamicsConfig, ResponseRule, Scheduler};
use rayon::prelude::*;

fn main() {
    let alphas = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
    let n = 7;

    println!("measured NE/OPT ratios (n = {n}, best-found equilibria)");
    println!(
        "{:>6} | {:>9} | {:>9} | {:>9} | {:>11}",
        "α", "1-2", "tree", "R²", "(α+2)/2"
    );
    println!("{}", "-".repeat(56));

    let rows: Vec<String> = alphas
        .par_iter()
        .map(|&alpha| {
            let r12 = measured_ratio(gncg_metrics::onetwo::random(n, 0.4, 3), alpha);
            let rtree = measured_ratio(
                gncg_metrics::treemetric::random_tree(n, 1.0, 4.0, 3).metric_closure(),
                alpha,
            );
            let rr2 = measured_ratio(
                gncg_metrics::euclidean::PointSet::random(n, 2, 10.0, 3)
                    .host_matrix(gncg_metrics::euclidean::Norm::L2),
                alpha,
            );
            format!(
                "{:>6.2} | {:>9} | {:>9} | {:>9} | {:>11.3}",
                alpha,
                fmt(r12),
                fmt(rtree),
                fmt(rr2),
                (alpha + 2.0) / 2.0
            )
        })
        .collect();
    for r in rows {
        println!("{r}");
    }

    println!("\nlower-bound families (closed forms, n → ∞):");
    println!(
        "{:>6} | {:>10} | {:>12} | {:>11}",
        "α", "T (Thm 15)", "L1 d=8 (T19)", "p≥2 (T18)"
    );
    println!("{}", "-".repeat(48));
    for alpha in alphas {
        println!(
            "{:>6.2} | {:>10.4} | {:>12.4} | {:>11.4}",
            alpha,
            gncg_constructions::star_tree::ratio_formula(1_000_000, alpha),
            gncg_core::poa::l1_lower_bound(alpha, 8),
            gncg_core::poa::rd_pnorm_lower_bound(alpha),
        );
    }
}

fn measured_ratio(host: gncg_graph::SymMatrix, alpha: f64) -> Option<f64> {
    let game = Game::new(host, alpha);
    let run = gncg_dynamics::run(
        &game,
        Profile::star(game.n(), 0),
        &DynamicsConfig {
            rule: ResponseRule::ExactBestResponse,
            scheduler: Scheduler::RoundRobin,
            max_rounds: 300,
            record_trace: false,
        },
    );
    if !run.converged() {
        return None;
    }
    let opt = gncg_solvers::opt_heuristic::social_optimum_heuristic(&game, 40);
    Some(social_cost(&game, &run.profile) / opt.cost)
}

fn fmt(r: Option<f64>) -> String {
    match r {
        Some(v) => format!("{v:.4}"),
        None => "cycle".to_string(),
    }
}
