//! Price-of-Anarchy sweep: measured equilibrium/optimum ratios across α
//! and model variants, printed as a plot-ready table.
//!
//! The sweep is one declarative [`ScenarioSpec`] grid (host factory × α),
//! sharded over the rayon pool with one engine-reusing [`Runner`] per
//! shard — the same pipeline `gncg grid` streams to JSONL.
//!
//! ```text
//! cargo run --release -p gncg-suite --example poa_sweep
//! ```

use std::collections::HashMap;

use gncg_suite::scenario::{Cell, RuleSpec, Runner, ScenarioSpec, SchedSpec};
use rayon::prelude::*;

fn main() {
    let alphas = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
    let hosts = ["onetwo", "tree", "r2"];
    let n = 7;

    let spec = ScenarioSpec {
        name: "poa-sweep".into(),
        hosts: hosts.iter().map(|s| s.to_string()).collect(),
        ns: vec![n],
        alphas: alphas.to_vec(),
        rules: vec![RuleSpec::Br],
        schedulers: vec![SchedSpec::RoundRobin],
        seeds: vec![3],
        max_rounds: 300,
        base_seed: 3,
        ..ScenarioSpec::default()
    };

    // NE/OPT needs the heuristic optimum alongside each equilibrium, so
    // run cells for their games and final costs: contiguous shards fan
    // out on the pool, one engine-reusing Runner per shard.
    let cells = spec.expand();
    let shards: Vec<&[Cell]> = cells.chunks(alphas.len()).collect();
    let ratios: HashMap<(String, u64), Option<f64>> = shards
        .into_par_iter()
        .map(|shard| {
            let mut runner = Runner::new();
            shard
                .iter()
                .map(|cell| {
                    let (res, game, _run) = runner.run_cell_full(cell);
                    let ratio = match (res.outcome, res.social_cost) {
                        ("converged", Some(eq)) => {
                            let opt =
                                gncg_solvers::opt_heuristic::social_optimum_heuristic(&game, 40);
                            Some(eq / opt.cost)
                        }
                        _ => None,
                    };
                    ((cell.host.clone(), cell.alpha.to_bits()), ratio)
                })
                .collect::<Vec<_>>()
        })
        .collect::<Vec<_>>()
        .into_iter()
        .flatten()
        .collect();

    println!("measured NE/OPT ratios (n = {n}, best-found equilibria)");
    println!(
        "{:>6} | {:>9} | {:>9} | {:>9} | {:>11}",
        "α", "1-2", "tree", "R²", "(α+2)/2"
    );
    println!("{}", "-".repeat(56));
    for alpha in alphas {
        let cols: Vec<String> = hosts
            .iter()
            .map(|h| fmt(ratios[&(h.to_string(), alpha.to_bits())]))
            .collect();
        println!(
            "{:>6.2} | {:>9} | {:>9} | {:>9} | {:>11.3}",
            alpha,
            cols[0],
            cols[1],
            cols[2],
            (alpha + 2.0) / 2.0
        );
    }

    println!("\nlower-bound families (closed forms, n → ∞):");
    println!(
        "{:>6} | {:>10} | {:>12} | {:>11}",
        "α", "T (Thm 15)", "L1 d=8 (T19)", "p≥2 (T18)"
    );
    println!("{}", "-".repeat(48));
    for alpha in alphas {
        println!(
            "{:>6.2} | {:>10.4} | {:>12.4} | {:>11.4}",
            alpha,
            gncg_constructions::star_tree::ratio_formula(1_000_000, alpha),
            gncg_core::poa::l1_lower_bound(alpha, 8),
            gncg_core::poa::rd_pnorm_lower_bound(alpha),
        );
    }
}

fn fmt(r: Option<f64>) -> String {
    match r {
        Some(v) => format!("{v:.4}"),
        None => "cycle".to_string(),
    }
}
