//! Price of Stability explorer (extension — the paper's conclusion names
//! PoS analysis as the next research step).
//!
//! Exhaustively enumerates all Nash equilibria of small instances (every
//! connected network × every edge-ownership assignment, certified by
//! exact best responses) and reports the exact PoS and PoA per instance.
//!
//! ```text
//! cargo run --release -p gncg-suite --example price_of_stability
//! ```

use gncg_core::Game;
use gncg_solvers::{opt_exact, stability};

fn main() {
    println!("exact equilibrium landscapes (n = 5)\n");
    println!(
        "{:>8} | {:>6} | {:>7} | {:>8} | {:>8} | {:>9}",
        "host", "α", "NE nets", "PoS", "PoA", "(α+2)/2"
    );
    println!("{}", "-".repeat(60));

    for (name, host) in [
        ("unit", gncg_metrics::unit::unit_host(5)),
        ("1-2", gncg_metrics::onetwo::random(5, 0.5, 3)),
        (
            "tree",
            gncg_metrics::treemetric::random_tree(5, 1.0, 3.0, 3).metric_closure(),
        ),
        (
            "metric",
            gncg_metrics::arbitrary::random_metric(5, 1.0, 4.0, 3),
        ),
        ("general", gncg_metrics::arbitrary::random(5, 0.5, 6.0, 3)),
    ] {
        for alpha in [0.5, 1.0, 3.0] {
            let game = Game::new(host.clone(), alpha);
            let land = stability::enumerate_equilibria(&game);
            let opt = opt_exact::social_optimum(&game);
            let pos = land.price_of_stability(opt.cost);
            let poa = land.price_of_anarchy(opt.cost);
            println!(
                "{:>8} | {:>6.2} | {:>7} | {:>8} | {:>8} | {:>9.3}",
                name,
                alpha,
                land.count,
                fmt(pos),
                fmt(poa),
                (alpha + 2.0) / 2.0
            );
        }
    }
    println!(
        "\nTree metrics always show PoS = 1 (Corollary 3); other hosts can\n\
         have PoS > 1, and every PoA stays below the (α+2)/2 bound — on\n\
         non-metric hosts this supports Conjecture 2."
    );
}

fn fmt(x: Option<f64>) -> String {
    match x {
        Some(v) => format!("{v:.4}"),
        None => "no NE".into(),
    }
}
