//! Fiber-network scenario: how the selfishly built network densifies as
//! the fiber price α drops — the paper's motivating setting (§1.3).
//!
//! Sweeps α on a fixed set of "cities" in the plane, reporting edges,
//! diameter, social cost, and the gap to the optimum.
//!
//! ```text
//! cargo run --release -p gncg-suite --example fiber_network
//! ```

use gncg_core::cost::social_cost;
use gncg_core::{Game, Profile};
use gncg_dynamics::{DynamicsConfig, ResponseRule, Scheduler};
use gncg_metrics::euclidean::{Norm, PointSet};

fn main() {
    // A stylized country: one hub city, a coastal arc, and an inland
    // cluster.
    let cities = PointSet::planar(&[
        (5.0, 5.0), // hub
        (0.0, 0.0),
        (1.0, 8.0),
        (2.5, 9.5),
        (8.0, 9.0),
        (9.5, 6.0),
        (9.0, 1.5),
        (6.0, 0.5),
        (4.0, 2.0),
    ]);
    let host = cities.host_matrix(Norm::L2);

    println!("fiber network formation, n = {} cities", cities.n());
    println!(
        "{:>8} | {:>6} | {:>9} | {:>10} | {:>10} | {:>8}",
        "α", "edges", "diameter", "eq cost", "opt cost", "ratio"
    );
    println!("{}", "-".repeat(66));

    for alpha in [0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0] {
        let game = Game::new(host.clone(), alpha);
        let run = gncg_dynamics::run(
            &game,
            Profile::star(game.n(), 0),
            &DynamicsConfig {
                rule: ResponseRule::BestGreedyMove,
                scheduler: Scheduler::RoundRobin,
                max_rounds: 500,
                ..DynamicsConfig::default()
            },
        );
        let g = run.profile.build_network(&game);
        let diam = gncg_graph::apsp::apsp_parallel(&g).diameter();
        let eq_cost = social_cost(&game, &run.profile);
        let opt = gncg_solvers::opt_heuristic::social_optimum_heuristic(&game, 30);
        println!(
            "{:>8.2} | {:>6} | {:>9.3} | {:>10.2} | {:>10.2} | {:>8.4}",
            alpha,
            g.m(),
            diam,
            eq_cost,
            opt.cost,
            eq_cost / opt.cost
        );
    }

    println!(
        "\nLow α: dense, short-route networks; high α: sparse trees.\n\
         The ratio column stays below the paper's (α+2)/2 bound."
    );
}
