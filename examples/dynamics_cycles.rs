//! Demonstrates the absence of the finite improvement property
//! (Theorems 14 and 17): certified improvement/best-response cycles on
//! the paper's Figure 5 and Figure 8 instances.
//!
//! ```text
//! cargo run --release -p gncg-suite --example dynamics_cycles
//! ```

use gncg_constructions::br_cycles::{
    fig5_game, fig8_game, find_best_response_cycle, find_improving_move_cycle,
};

fn main() {
    println!("— Theorem 14: tree metrics are not potential games —");
    let g5 = fig5_game(1.0);
    match find_improving_move_cycle(&g5, 16, 60_000) {
        Some(cycle) => {
            println!(
                "certified improving-move cycle of length {} on the Fig. 5 tree:",
                cycle.len()
            );
            for (i, step) in cycle.steps.iter().enumerate() {
                let before = gncg_core::cost::agent_cost(&g5, &step.before, step.agent).total();
                let after = gncg_core::cost::agent_cost(&g5, &step.after, step.agent).total();
                println!(
                    "  step {}: agent a{} improves {:.2} → {:.2}; strategy {:?}",
                    i,
                    step.agent,
                    before,
                    after,
                    step.after.strategy(step.agent)
                );
            }
        }
        None => println!("no cycle found within budget (increase it)"),
    }

    println!("\n— Theorem 17: no FIP under the 1-norm in the plane —");
    let g8 = fig8_game(1.0);
    match find_best_response_cycle(&g8, 0, 30_000) {
        Some(cycle) => {
            println!(
                "certified best-response cycle of {} moves on the Fig. 8 points:",
                cycle.len()
            );
            for (i, step) in cycle.steps.iter().enumerate() {
                println!(
                    "  move {}: agent a{} (cost {:.2} → {:.2})",
                    i, step.agent, step.cost_before, step.cost_after
                );
            }
            println!("(the paper's Fig. 8 cycle also has 6 states)");
        }
        None => println!("no cycle found within budget (increase it)"),
    }
}
