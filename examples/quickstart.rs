//! Quickstart: build a geometric host through the factory registry, run
//! best-response dynamics on the scenario engine, and compare the reached
//! equilibrium with the social optimum.
//!
//! ```text
//! cargo run --release -p gncg-suite --example quickstart
//! ```

use gncg_core::cost::social_cost;
use gncg_suite::scenario::{RuleSpec, Runner, ScenarioSpec, SchedSpec};

fn main() {
    // One cell of a scenario grid: six agents at random positions in the
    // plane — think of ISPs placing fiber between cities. (Six keeps the
    // *exact* social-optimum search below instant; see `fiber_network`
    // for larger instances with the heuristic optimum.) The same spec,
    // with more axis values, is what `gncg grid` shards to JSONL.
    let spec = ScenarioSpec {
        name: "quickstart".into(),
        hosts: vec!["r2".into()], // points in the plane under the 2-norm
        ns: vec![6],
        alphas: vec![1.5], // price per unit of fiber relative to usage cost
        rules: vec![RuleSpec::Br],
        schedulers: vec![SchedSpec::RoundRobin],
        seeds: vec![42],
        max_rounds: 200,
        base_seed: 42,
        ..ScenarioSpec::default()
    };
    let cell = &spec.expand()[0];

    let mut runner = Runner::new();
    let (result, game, run) = runner.run_cell_full(cell);

    println!("GNCG quickstart: n = {}, α = {}", game.n(), game.alpha());
    println!(
        "host factory:   {} (metric: {})\n",
        cell.host,
        game.is_metric()
    );

    println!(
        "dynamics outcome: {} (rounds {})",
        result.outcome, result.rounds
    );
    println!("applied moves:    {}", result.moves);

    let eq_cost = social_cost(&game, &run.profile);
    let opt = gncg_solvers::opt_exact::social_optimum(&game);
    println!("\nequilibrium network:");
    for (u, v) in gncg_suite::scenario::bought_edges(&run.profile) {
        println!("  {u} — {v}  (w = {:.3})", game.w(u, v));
    }
    println!("\nsocial cost (equilibrium): {eq_cost:.3}");
    println!("social cost (optimum):     {:.3}", opt.cost);
    println!(
        "price of anarchy (this instance ≥): {:.4}",
        eq_cost / opt.cost
    );
    println!(
        "paper bound (α+2)/2:               {:.4}",
        gncg_core::poa::metric_upper_bound(game.alpha())
    );

    println!("\ncertified Nash equilibrium: {}", result.certified);
    println!("as a JSONL grid line:\n  {}", result.to_jsonl());
}
