//! Quickstart: build a geometric host, run best-response dynamics, and
//! compare the reached equilibrium with the social optimum.
//!
//! ```text
//! cargo run --release -p gncg-suite --example quickstart
//! ```

use gncg_core::cost::social_cost;
use gncg_core::{Game, Profile};
use gncg_dynamics::{DynamicsConfig, ResponseRule, Scheduler};
use gncg_metrics::euclidean::{Norm, PointSet};

fn main() {
    // Six agents at random positions in the unit square — think of ISPs
    // placing fiber between cities. (Six keeps the *exact* social-optimum
    // search below instant; see `fiber_network` for larger instances with
    // the heuristic optimum.)
    let points = PointSet::random(6, 2, 1.0, 42);
    let alpha = 1.5; // price per unit of fiber relative to usage cost
    let game = Game::new(points.host_matrix(Norm::L2), alpha);

    println!("GNCG quickstart: n = {}, α = {}", game.n(), game.alpha());
    println!("host is metric: {}\n", game.is_metric());

    // Start from a star and let agents play exact best responses.
    let result = gncg_dynamics::run(
        &game,
        Profile::star(game.n(), 0),
        &DynamicsConfig {
            rule: ResponseRule::ExactBestResponse,
            scheduler: Scheduler::RoundRobin,
            max_rounds: 200,
            record_trace: true,
        },
    );

    println!("dynamics outcome: {:?}", result.outcome);
    println!("applied moves:    {}", result.moves);

    let eq_cost = social_cost(&game, &result.profile);
    let opt = gncg_solvers::opt_exact::social_optimum(&game);
    println!("\nequilibrium network:");
    for (u, v) in result.profile.edges() {
        println!("  {u} — {v}  (w = {:.3})", game.w(u, v));
    }
    println!("\nsocial cost (equilibrium): {eq_cost:.3}");
    println!("social cost (optimum):     {:.3}", opt.cost);
    println!("price of anarchy (this instance ≥): {:.4}", eq_cost / opt.cost);
    println!(
        "paper bound (α+2)/2:               {:.4}",
        gncg_core::poa::metric_upper_bound(alpha)
    );

    if result.converged() {
        let is_ne = gncg_core::equilibrium::is_nash_equilibrium(&game, &result.profile);
        println!("\ncertified Nash equilibrium: {is_ne}");
    }
}
