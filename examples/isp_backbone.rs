//! ISP-backbone scenario on a tree metric (T–GNCG): the provider's
//! physical duct network is a tree; ISPs lease end-to-end capacity priced
//! by tree distance.
//!
//! Demonstrates Corollary 3 (the defining tree is optimal and stable) and
//! Theorem 15 (selfish stars can be (α+2)/2 times worse).
//!
//! ```text
//! cargo run --release -p gncg-suite --example isp_backbone
//! ```

use gncg_constructions::star_tree;
use gncg_core::cost::social_cost;
use gncg_core::equilibrium::is_nash_equilibrium;

fn main() {
    let alpha = 6.0;
    println!("T–GNCG backbone scenario, α = {alpha}\n");

    // A random duct tree: what a sane central planner would build.
    let tree = gncg_metrics::treemetric::random_caterpillar(5, 6, 1.0, 4.0, 7);
    let game = gncg_core::Game::new(tree.metric_closure(), alpha);
    let opt_profile = gncg_solvers::tree_opt::tree_optimum_profile(&tree);
    let opt_cost = social_cost(&game, &opt_profile);
    println!("random duct tree: n = {}", tree.n());
    println!("  tree cost (social optimum, Cor. 3): {opt_cost:.2}");
    println!(
        "  defining tree certified NE:          {}",
        is_nash_equilibrium(&game, &opt_profile)
    );

    // The adversarial family: how bad can selfish stability get?
    println!(
        "\nworst-case family (Thm 15 / Fig 6): ratio → (α+2)/2 = {}",
        (alpha + 2.0) / 2.0
    );
    println!(
        "{:>6} | {:>10} | {:>10} | {:>8}",
        "n", "NE cost", "OPT cost", "ratio"
    );
    println!("{}", "-".repeat(42));
    for n in [4, 8, 16, 32] {
        let g = star_tree::game(n, alpha);
        let ne = social_cost(&g, &star_tree::ne_profile(n));
        let opt = social_cost(&g, &star_tree::opt_profile(n));
        println!(
            "{:>6} | {:>10.2} | {:>10.2} | {:>8.4}",
            n,
            ne,
            opt,
            ne / opt
        );
    }
    println!(
        "\nclosed form at n = 10^6: {:.6}",
        star_tree::ratio_formula(1_000_000, alpha)
    );
}
